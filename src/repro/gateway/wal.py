"""Write-ahead log: length-prefixed, CRC-checked record framing.

Every durable mutation (table create, row append) is serialized into one
WAL record and written — with a single ``fsync`` per *group-commit
batch* — before it is applied to the in-memory store.  On recovery the
log is replayed on top of the latest snapshot.

Record framing (all integers little-endian)::

    u32 payload_len | u32 crc32(payload) | payload
    payload = u32 header_len | header JSON (utf-8) | column blobs

The header describes the mutation (kind, table, schema, per-column dtype
and row count, LSN); the column blobs are the raw little-endian bytes of
each column array, in header order.  Raw ``tobytes`` framing — the same
choice as the sharding tier's pipe protocol — keeps float64 payloads
(including NaN bit patterns) exactly intact, so recovered answers are
bit-identical to the pre-crash store.

**Torn tails vs. corruption.**  A crash mid-write leaves an incomplete
final record (or a complete-length final record whose payload bytes
never all hit the disk).  That is the *expected* crash signature:
:func:`scan_wal` reports it as a torn tail and recovery truncates it —
those bytes were never acknowledged as durable.  A CRC failure on a
record **followed by further intact data** is different: something
damaged the middle of the log, and truncating there would silently drop
acknowledged writes.  That raises :class:`~repro.errors.WALCorruptionError`
and leaves the file untouched for inspection.
"""

from __future__ import annotations

import io
import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from ..errors import WALCorruptionError, WALError
from ..sql.types import DataType

PathLike = Union[str, Path]

_LEN_CRC = struct.Struct("<II")
_HDR_LEN = struct.Struct("<I")

#: Record kinds the log understands.
KIND_CREATE = "create"
KIND_APPEND = "append"


@dataclass
class WALRecord:
    """One decoded mutation."""

    kind: str  # KIND_CREATE | KIND_APPEND
    table: str
    lsn: int
    #: For creates: the full schema as [(name, dtype-string), ...] in
    #: schema order.  For appends: the appended columns' declared
    #: dtypes, same order as ``columns``.
    attributes: List[Tuple[str, str]] = field(default_factory=list)
    #: Column payloads by name (empty for a rowless create).
    columns: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def num_rows(self) -> int:
        for array in self.columns.values():
            return int(array.shape[0])
        return 0


def encode_record(record: WALRecord) -> bytes:
    """Serialize one record to its framed byte representation."""
    header = {
        "kind": record.kind,
        "table": record.table,
        "lsn": record.lsn,
        "attributes": [[n, d] for n, d in record.attributes],
        "columns": [],
    }
    blobs: List[bytes] = []
    for name, dtype_name in record.attributes:
        if name not in record.columns:
            continue
        dtype = DataType.from_any(dtype_name).numpy_dtype
        array = np.ascontiguousarray(
            np.asarray(record.columns[name], dtype=dtype)
        )
        blob = array.astype(dtype.newbyteorder("<"), copy=False).tobytes()
        header["columns"].append(
            {"name": name, "dtype": dtype_name, "rows": int(array.shape[0])}
        )
        blobs.append(blob)
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    payload = b"".join(
        [_HDR_LEN.pack(len(header_bytes)), header_bytes, *blobs]
    )
    return _LEN_CRC.pack(len(payload), zlib.crc32(payload)) + payload


def decode_payload(payload: bytes) -> WALRecord:
    """Rebuild a :class:`WALRecord` from a verified payload."""
    if len(payload) < _HDR_LEN.size:
        raise WALError("WAL payload shorter than its header length field")
    (header_len,) = _HDR_LEN.unpack_from(payload, 0)
    start = _HDR_LEN.size
    if start + header_len > len(payload):
        raise WALError("WAL header length exceeds payload")
    try:
        header = json.loads(payload[start : start + header_len])
    except ValueError as exc:
        raise WALError(f"WAL header is not valid JSON: {exc}") from exc
    offset = start + header_len
    columns: Dict[str, np.ndarray] = {}
    for spec in header.get("columns", []):
        dtype = DataType.from_any(spec["dtype"]).numpy_dtype
        nbytes = int(spec["rows"]) * dtype.itemsize
        if offset + nbytes > len(payload):
            raise WALError(
                f"WAL column blob for {spec['name']!r} exceeds payload"
            )
        # .copy() both detaches from the payload buffer and makes the
        # array writable (frombuffer views are read-only).
        columns[spec["name"]] = np.frombuffer(
            payload, dtype=dtype.newbyteorder("<"), count=int(spec["rows"]),
            offset=offset,
        ).astype(dtype, copy=True)
        offset += nbytes
    return WALRecord(
        kind=header["kind"],
        table=header["table"],
        lsn=int(header["lsn"]),
        attributes=[(n, d) for n, d in header.get("attributes", [])],
        columns=columns,
    )


@dataclass
class WALScan:
    """Result of reading a log back: records plus tail diagnosis."""

    records: List[WALRecord]
    #: Byte offset just past the last intact record — the truncation
    #: point when the tail is torn.
    good_bytes: int
    #: Whether bytes past ``good_bytes`` were discarded as a torn tail.
    torn_tail: bool


def scan_wal(path: PathLike) -> WALScan:
    """Read every intact record; diagnose the tail.

    Raises :class:`WALCorruptionError` for a CRC-failed record that is
    *not* the final one (mid-log damage); tolerates an incomplete or
    CRC-failed **final** record as a torn crash tail.
    """
    path = Path(path)
    if not path.exists():
        return WALScan([], 0, False)
    data = path.read_bytes()
    records: List[WALRecord] = []
    offset = 0
    size = len(data)
    while offset < size:
        if offset + _LEN_CRC.size > size:
            return WALScan(records, offset, True)
        length, crc = _LEN_CRC.unpack_from(data, offset)
        body_start = offset + _LEN_CRC.size
        body_end = body_start + length
        if body_end > size:
            return WALScan(records, offset, True)
        payload = data[body_start:body_end]
        if zlib.crc32(payload) != crc:
            if body_end >= size:
                # Final record: a torn write can leave the full declared
                # length allocated but the payload only partially
                # persisted.  Nothing intact follows, so discard it.
                return WALScan(records, offset, True)
            raise WALCorruptionError(
                f"WAL record at byte {offset} of {path} fails its CRC "
                f"but is followed by {size - body_end} more bytes — "
                "mid-log corruption, refusing to truncate acknowledged "
                "writes"
            )
        try:
            records.append(decode_payload(payload))
        except WALError as exc:
            if body_end >= size:
                return WALScan(records, offset, True)
            raise WALCorruptionError(
                f"WAL record at byte {offset} of {path} is undecodable "
                f"mid-log: {exc}"
            ) from exc
        offset = body_end
    return WALScan(records, offset, False)


class WriteAheadLog:
    """Append-only log with group commit.

    Not internally locked: the owning :class:`~repro.gateway.persist.
    DurableStore` serializes all mutations under its apply lock.
    """

    def __init__(self, path: PathLike, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "ab")
        # Counters consumed by /metrics.
        self.records_written = 0
        self.bytes_written = 0
        self.fsyncs = 0
        self.group_commits = 0

    def append_batch(self, records: Sequence[WALRecord]) -> None:
        """Write a batch of records with one flush + (optional) fsync.

        This *is* the group commit: every record in the batch becomes
        durable together, so the gateway acknowledges all of the
        coalesced appends only after the single fsync returns.
        """
        if not records:
            return
        if self._file.closed:
            raise WALError(f"WAL {self.path} is closed")
        buffer = io.BytesIO()
        for record in records:
            buffer.write(encode_record(record))
        blob = buffer.getvalue()
        self._file.write(blob)
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
            self.fsyncs += 1
        self.records_written += len(records)
        self.bytes_written += len(blob)
        self.group_commits += 1

    def append(self, record: WALRecord) -> None:
        self.append_batch([record])

    def truncate_to(self, good_bytes: int) -> None:
        """Discard a torn tail (bytes past the last intact record)."""
        self._file.flush()
        self._file.truncate(good_bytes)
        self._file.seek(0, os.SEEK_END)
        if self.fsync:
            os.fsync(self._file.fileno())

    def rewrite(self, records: Sequence[WALRecord]) -> None:
        """Atomically replace the log's contents (checkpoint compaction).

        Written to a temp sibling, fsynced, then ``os.replace``d over
        the live log so a crash mid-checkpoint leaves either the old or
        the new log intact, never a mix.
        """
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "wb") as handle:
            for record in records:
                handle.write(encode_record(record))
            handle.flush()
            os.fsync(handle.fileno())
        self._file.close()
        os.replace(tmp, self.path)
        self._file = open(self.path, "ab")
        if self.fsync:
            # Persist the directory entry for the replace itself.
            dir_fd = os.open(str(self.path.parent), os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)

    def tell(self) -> int:
        return self._file.tell()

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            if self.fsync:
                os.fsync(self._file.fileno())
            self._file.close()

    def stats(self) -> Dict[str, int]:
        return {
            "records_written": self.records_written,
            "bytes_written": self.bytes_written,
            "fsyncs": self.fsyncs,
            "group_commits": self.group_commits,
        }
