"""Network gateway: asyncio HTTP serving + write-ahead durability.

The serving tier that turns the in-process adaptive store into a system
real traffic can hit (ROADMAP item 1): an asyncio HTTP/JSON server
(:mod:`.server`) bridging onto the threaded
:class:`~repro.service.H2OService`, multi-tenant admission
(:mod:`.tenancy`), Prometheus metrics (:mod:`.metrics`), and a
durability tier (:mod:`.persist` + :mod:`.wal`) that persists tables
*and* their learned adaptation state — so a restart recovers the
affinity statistics, layouts and plan-cache warmth the store paid
queries to learn, not just the rows.  See docs/gateway.md.
"""

from .client import GatewayClient, GatewayHTTPError
from .persist import DurableStore
from .server import AppendBatcher, Gateway
from .tenancy import Tenant, TenantRegistry
from .wal import WALRecord, WriteAheadLog, scan_wal

__all__ = [
    "AppendBatcher",
    "DurableStore",
    "Gateway",
    "GatewayClient",
    "GatewayHTTPError",
    "Tenant",
    "TenantRegistry",
    "WALRecord",
    "WriteAheadLog",
    "scan_wal",
]
