"""Minimal HTTP/1.1 on top of asyncio streams.

Just enough protocol for the gateway's JSON API — request-line +
headers + ``Content-Length`` bodies, keep-alive by default — with hard
limits on line, header and body sizes so a misbehaving client cannot
balloon memory.  Deliberately not a web framework: the gateway has five
routes and no need for chunked encoding, multipart, or TLS (terminate
TLS in front if needed).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import BadRequestError

#: Hard parser limits (pre-body); the body limit is configured.
MAX_REQUEST_LINE = 8192
MAX_HEADER_BYTES = 32768
MAX_HEADERS = 100

#: Reason phrases for the statuses the gateway emits.
REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HTTPError(BadRequestError):
    """A protocol-level failure with the status it should map to."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed request."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    keep_alive: bool = True

    def json(self) -> object:
        """The body decoded as JSON (400 on malformed input)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except ValueError as exc:
            raise HTTPError(400, f"request body is not valid JSON: {exc}")

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)


async def read_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> Optional[Request]:
    """Parse one request; ``None`` on clean EOF between requests."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # connection closed between requests
        raise HTTPError(400, "truncated request line")
    except asyncio.LimitOverrunError:
        raise HTTPError(400, "request line too long")
    if len(line) > MAX_REQUEST_LINE:
        raise HTTPError(400, "request line too long")
    parts = line.decode("latin-1").rstrip("\r\n").split(" ")
    if len(parts) != 3:
        raise HTTPError(400, f"malformed request line: {line!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HTTPError(400, f"unsupported protocol version {version!r}")
    # Strip any query string; the API carries parameters in JSON bodies.
    path = target.split("?", 1)[0]

    headers: Dict[str, str] = {}
    total = 0
    while True:
        try:
            raw = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise HTTPError(400, "truncated headers")
        if raw == b"\r\n":
            break
        total += len(raw)
        if total > MAX_HEADER_BYTES or len(headers) >= MAX_HEADERS:
            raise HTTPError(400, "headers too large")
        text = raw.decode("latin-1").rstrip("\r\n")
        name, sep, value = text.partition(":")
        if not sep:
            raise HTTPError(400, f"malformed header line: {text!r}")
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise HTTPError(411, "chunked bodies are not supported")
    body = b""
    length_raw = headers.get("content-length")
    if length_raw is not None:
        try:
            length = int(length_raw)
        except ValueError:
            raise HTTPError(400, f"bad content-length {length_raw!r}")
        if length < 0:
            raise HTTPError(400, "negative content-length")
        if length > max_body_bytes:
            raise HTTPError(
                413, f"body of {length} bytes exceeds {max_body_bytes}"
            )
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HTTPError(400, "connection closed mid-body")

    connection = headers.get("connection", "").lower()
    keep_alive = (
        connection != "close"
        if version == "HTTP/1.1"
        else connection == "keep-alive"
    )
    return Request(method, path, headers, body, keep_alive)


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    keep_alive: bool = True,
) -> bytes:
    """Serialize one response (Content-Length framing, no chunking)."""
    reason = REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


def json_response(
    status: int, payload: object, keep_alive: bool = True
) -> bytes:
    return render_response(
        status,
        json.dumps(payload).encode("utf-8"),
        keep_alive=keep_alive,
    )


def split_path(path: str) -> Tuple[str, ...]:
    """``/v1/tables/t/append`` → ``("v1", "tables", "t", "append")``."""
    return tuple(part for part in path.split("/") if part)
