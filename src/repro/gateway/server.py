"""The asyncio gateway: HTTP routes bridged onto the threaded service.

One event loop accepts connections and parses requests; everything that
can block — query execution, WAL writes, checkpoints — runs on a thread
pool via ``loop.run_in_executor`` so the loop never stalls.  Appends are
coalesced by :class:`AppendBatcher` into group commits: requests arriving
within ``group_commit_window`` share a single WAL batch and fsync, and
every rider is acknowledged only after that fsync returns.

Routes::

    POST /v1/query               {"sql": ..., "timeout_ms"?: ...}
    PUT  /v1/tables/{name}       {"attributes": [...], "columns"?: {...}}
    POST /v1/tables/{name}/append {"columns": {...}}
    GET  /v1/tables              list tables
    POST /v1/checkpoint          force a snapshot + WAL compaction
    GET  /healthz                service health, worst rung wins
    GET  /metrics                Prometheus text format
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from ..config import GatewayConfig
from ..errors import (
    AuthError,
    BadRequestError,
    CatalogError,
    GatewayError,
    H2OError,
    QueryTimeoutError,
    SchemaError,
    ServiceClosedError,
    ServiceOverloadedError,
    SQLError,
    TenantQuotaError,
)
from .http import (
    HTTPError,
    Request,
    json_response,
    read_request,
    render_response,
    split_path,
)
from .metrics import render_metrics
from .persist import DurableStore
from .tenancy import Tenant, TenantRegistry

#: Exception class → HTTP status, most specific first.
_STATUS_MAP: Tuple[Tuple[type, int], ...] = (
    (HTTPError, 400),  # carries its own status; handled specially
    (QueryTimeoutError, 504),
    (AuthError, 401),
    (TenantQuotaError, 429),
    (ServiceOverloadedError, 429),
    (ServiceClosedError, 503),
    (CatalogError, 404),
    (BadRequestError, 400),
    (SQLError, 400),
    (SchemaError, 400),
)


def _status_for(exc: BaseException) -> int:
    if isinstance(exc, HTTPError):
        return exc.status
    for klass, status in _STATUS_MAP:
        if isinstance(exc, klass):
            return status
    return 500


def _error_body(exc: BaseException) -> Dict[str, object]:
    return {
        "error": type(exc).__name__,
        "message": str(exc),
        "retryable": bool(getattr(exc, "is_retryable", False)),
    }


class PlainText:
    """A handler payload rendered as-is instead of JSON (``/metrics``)."""

    def __init__(
        self,
        text: str,
        content_type: str = "text/plain; version=0.0.4; charset=utf-8",
    ) -> None:
        self.text = text
        self.content_type = content_type


class AppendBatcher:
    """Coalesces concurrent appends into group commits.

    A single drainer task pulls items off an asyncio queue; the first
    item opens a batch, then the drainer keeps collecting until the
    commit window elapses or the batch is full, and ships the whole
    batch to :meth:`DurableStore.append_many` (one WAL write + one
    fsync) on the executor.  Each rider's future resolves with its own
    outcome — a validation failure in one item never poisons the batch.
    """

    def __init__(
        self,
        store: DurableStore,
        executor: ThreadPoolExecutor,
        window: float,
        max_batch: int,
    ) -> None:
        self._store = store
        self._executor = executor
        self._window = window
        self._max_batch = max_batch
        self._queue: "asyncio.Queue[Tuple[str, dict, asyncio.Future]]" = (
            asyncio.Queue()
        )
        self._task: Optional[asyncio.Task] = None
        self._closed = False
        self.batches = 0
        self.items = 0

    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(self._drain())

    async def submit(self, table: str, columns: dict) -> int:
        """Enqueue one append; resolves after its group commit fsyncs."""
        if self._closed:
            raise ServiceClosedError("gateway is shutting down")
        future: asyncio.Future = (
            asyncio.get_running_loop().create_future()
        )
        await self._queue.put((table, columns, future))
        return await future

    async def _drain(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            if item is None:  # type: ignore[comparison-overlap]
                break
            batch = [item]
            deadline = loop.time() + self._window
            while len(batch) < self._max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    extra = await asyncio.wait_for(
                        self._queue.get(), timeout=remaining
                    )
                except asyncio.TimeoutError:
                    break
                if extra is None:  # type: ignore[comparison-overlap]
                    self._closed = True
                    break
                batch.append(extra)
            await self._commit(batch)
            if self._closed:
                break

    async def _commit(self, batch: List[Tuple[str, dict, asyncio.Future]]) -> None:
        loop = asyncio.get_running_loop()
        items = [(table, columns) for table, columns, _ in batch]
        try:
            outcomes = await loop.run_in_executor(
                self._executor, self._store.append_many, items
            )
        except BaseException as exc:  # the whole commit failed
            for _, _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        self.batches += 1
        self.items += len(batch)
        for (_, _, future), outcome in zip(batch, outcomes):
            if future.done():
                continue
            if isinstance(outcome, BaseException):
                future.set_exception(outcome)
            else:
                future.set_result(outcome)

    async def close(self) -> None:
        """Stop accepting, drain what's queued, stop the task."""
        self._closed = True
        await self._queue.put(None)  # type: ignore[arg-type]
        if self._task is not None:
            await self._task
        # Flush stragglers that slipped in before the sentinel.
        leftovers: List[Tuple[str, dict, asyncio.Future]] = []
        while not self._queue.empty():
            extra = self._queue.get_nowait()
            if extra is not None:
                leftovers.append(extra)
        if leftovers:
            await self._commit(leftovers)

    def stats(self) -> Dict[str, int]:
        return {"batches": self.batches, "items": self.items}


class Gateway:
    """The HTTP serving tier over one :class:`DurableStore`."""

    def __init__(
        self,
        store: DurableStore,
        config: Optional[GatewayConfig] = None,
    ) -> None:
        self.store = store
        self.config = config or store.gateway_config
        self.tenants = TenantRegistry(
            store.service,
            quota=self.config.tenant_quota,
            default_tenant=self.config.default_tenant,
            allowed_keys=self.config.api_keys,
            max_tenants=self.config.max_tenants,
        )
        self._executor = ThreadPoolExecutor(
            max_workers=8, thread_name_prefix="gateway-exec"
        )
        self.batcher = AppendBatcher(
            store,
            self._executor,
            window=self.config.group_commit_window,
            max_batch=self.config.group_commit_max_batch,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._counter_lock = threading.Lock()
        self._endpoint_counters: Dict[Tuple[str, int], int] = {}
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.batcher.start()

    @property
    def port(self) -> int:
        """The actually bound port (resolves ``port=0``)."""
        if self._server is None or not self._server.sockets:
            raise GatewayError("gateway is not listening")
        return self._server.sockets[0].getsockname()[1]

    async def close(self, checkpoint: bool = True) -> None:
        """Graceful shutdown: stop accepting, drain appends, close store."""
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.batcher.close()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            self._executor, lambda: self.store.close(checkpoint=checkpoint)
        )
        self._executor.shutdown(wait=False)

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(
                        reader, self.config.max_body_bytes
                    )
                except HTTPError as exc:
                    writer.write(
                        json_response(
                            exc.status, _error_body(exc), keep_alive=False
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                response = await self._dispatch(request)
                writer.write(response)
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: Request) -> bytes:
        endpoint = "unknown"
        try:
            endpoint, handler, args = self._route(request)
            status, payload = await handler(request, *args)
            if isinstance(payload, PlainText):
                body = render_response(
                    status,
                    payload.text.encode("utf-8"),
                    content_type=payload.content_type,
                    keep_alive=request.keep_alive,
                )
            else:
                body = json_response(
                    status, payload, keep_alive=request.keep_alive
                )
        except H2OError as exc:
            status = _status_for(exc)
            body = json_response(
                status, _error_body(exc), keep_alive=request.keep_alive
            )
        except Exception as exc:  # never leak a traceback to the wire
            status = 500
            body = json_response(
                status, _error_body(exc), keep_alive=request.keep_alive
            )
        self._count(endpoint, status)
        return body

    def _count(self, endpoint: str, status: int) -> None:
        with self._counter_lock:
            key = (endpoint, status)
            self._endpoint_counters[key] = (
                self._endpoint_counters.get(key, 0) + 1
            )

    def _route(self, request: Request):
        parts = split_path(request.path)
        method = request.method.upper()
        if parts == ("healthz",) and method == "GET":
            return "healthz", self._handle_healthz, ()
        if parts == ("metrics",) and method == "GET":
            return "metrics", self._handle_metrics, ()
        if parts == ("v1", "query") and method == "POST":
            return "query", self._handle_query, ()
        if parts == ("v1", "tables") and method == "GET":
            return "tables", self._handle_list_tables, ()
        if parts == ("v1", "checkpoint") and method == "POST":
            return "checkpoint", self._handle_checkpoint, ()
        if (
            len(parts) == 3
            and parts[:2] == ("v1", "tables")
            and method == "PUT"
        ):
            return "create", self._handle_create, (parts[2],)
        if (
            len(parts) == 4
            and parts[:2] == ("v1", "tables")
            and parts[3] == "append"
            and method == "POST"
        ):
            return "append", self._handle_append, (parts[2],)
        raise HTTPError(
            404, f"no route for {method} {request.path}"
        )

    def _tenant(self, request: Request) -> Tenant:
        return self.tenants.resolve(
            request.header(self.config.api_key_header) or None
        )

    @staticmethod
    def _timeout_from(body: object, default: float) -> float:
        if isinstance(body, dict) and "timeout_ms" in body:
            try:
                timeout = float(body["timeout_ms"]) / 1e3
            except (TypeError, ValueError):
                raise BadRequestError(
                    f"timeout_ms must be a number, got {body['timeout_ms']!r}"
                )
            if timeout <= 0:
                raise BadRequestError("timeout_ms must be positive")
            return timeout
        return default

    # -- handlers ----------------------------------------------------------

    async def _handle_query(self, request: Request):
        body = request.json()
        if not isinstance(body, dict) or not isinstance(
            body.get("sql"), str
        ):
            raise BadRequestError('body must be {"sql": "..."}')
        sql = body["sql"]
        timeout = self._timeout_from(body, self.config.default_timeout)
        tenant = self._tenant(request)
        tenant.acquire()
        loop = asyncio.get_running_loop()
        try:
            report = await loop.run_in_executor(
                self._executor,
                lambda: tenant.session.execute(sql, timeout=timeout),
            )
        finally:
            tenant.release()
        result = report.result
        payload = {
            "columns": list(result.column_names),
            "rows": result.data.tolist(),
            "num_rows": result.num_rows,
            "elapsed_ms": report.seconds * 1e3,
            "plan_cache_hit": report.plan_cache_hit,
            "snapshot_epoch": report.snapshot_epoch,
            "tenant": tenant.name,
        }
        return 200, payload

    async def _handle_create(self, request: Request, name: str):
        body = request.json()
        if not isinstance(body, dict) or "attributes" not in body:
            raise BadRequestError(
                'body must be {"attributes": [{"name", "dtype"}, ...]}'
            )
        tenant = self._tenant(request)
        tenant.acquire()
        loop = asyncio.get_running_loop()
        try:
            table = await loop.run_in_executor(
                self._executor,
                lambda: self.store.create_table(
                    name, body["attributes"], body.get("columns")
                ),
            )
        finally:
            tenant.release()
        return 201, {
            "table": table.name,
            "num_rows": table.num_rows,
            "attributes": [
                {"name": a.name, "dtype": a.dtype.value}
                for a in table.schema
            ],
        }

    async def _handle_append(self, request: Request, name: str):
        body = request.json()
        if not isinstance(body, dict) or not isinstance(
            body.get("columns"), dict
        ):
            raise BadRequestError('body must be {"columns": {...}}')
        tenant = self._tenant(request)
        tenant.acquire()
        try:
            appended = await self.batcher.submit(name, body["columns"])
        finally:
            tenant.release()
        return 200, {
            "table": name,
            "appended": appended,
            "durable": bool(
                self.config.wal_enabled and self.config.wal_fsync
            ),
        }

    async def _handle_list_tables(self, request: Request):
        # Snapshot under the store's apply lock (in the executor so the
        # event loop never blocks on it): iterating the live catalog
        # here would race concurrent creates.
        loop = asyncio.get_running_loop()
        tables = await loop.run_in_executor(
            self._executor, self.store.table_infos
        )
        return 200, {"tables": tables}

    async def _handle_checkpoint(self, request: Request):
        loop = asyncio.get_running_loop()
        snap = await loop.run_in_executor(
            self._executor, self.store.checkpoint
        )
        return 200, {"snapshot": snap.name}

    async def _handle_healthz(self, request: Request):
        loop = asyncio.get_running_loop()
        report = await loop.run_in_executor(
            self._executor, self.store.service.health
        )
        status = 200 if report.status == "healthy" else 503
        payload = dataclasses.asdict(report)
        # Nested breaker/quarantine maps can hold non-JSON values; keep
        # the wire payload to the scalar rungs.
        payload.pop("breaker_states", None)
        payload.pop("quarantines", None)
        return status, payload

    async def _handle_metrics(self, request: Request):
        loop = asyncio.get_running_loop()

        def collect() -> str:
            with self._counter_lock:
                counters = dict(self._endpoint_counters)
            return render_metrics(
                service_stats=self.store.service.stats.snapshot(),
                endpoint_counters=counters,
                tenant_stats={
                    name: tenant.stats()
                    for name, tenant in self.tenants.tenants().items()
                },
                store_stats=self.store.stats(),
                health_status=self.store.service.health().status,
                batcher_stats=self.batcher.stats(),
                # Engines are created on first query; tables never
                # queried have no pruning story to report yet.
                engine_stats={
                    engine.table.name: engine.stats()
                    for engine in self.store.system.engines()
                },
            )

        text = await loop.run_in_executor(self._executor, collect)
        return 200, PlainText(text)
