"""Durability tier: snapshots + WAL replay + learned-state recovery.

Grown out of :mod:`repro.storage.io` (which persists one table's logical
columns): this module persists a whole *store* — every table, its
physical layout configuration, **and the adaptation state its engine
learned** — so a restart recovers not just the rows but the affinity
statistics, materialized column groups, learned selectivities and warm
plan-cache shapes that H2O paid queries to acquire.  RodentStore-style:
learned physical designs are first-class persistent artifacts.

Two cooperating mechanisms:

- the :class:`~repro.gateway.wal.WriteAheadLog` records every mutation
  (create/append) *before* it is applied, fsync'd per group-commit
  batch, so acknowledged writes survive a crash at any instant;
- periodic **snapshots** serialize the full store state.  A snapshot
  directory is only considered once its ``manifest.json`` exists (it is
  written last), so a crash mid-snapshot leaves a previous snapshot
  authoritative.  After a snapshot completes, the WAL is compacted via
  an atomic rewrite.

Recovery = load latest complete snapshot → replay the WAL tail (records
with LSN beyond the snapshot) → truncate a torn final record, if any →
re-seed every engine with its persisted adaptation state
(:meth:`~repro.core.engine.H2OEngine.seed_adaptation_state`).  The
restart-recovery oracle (:mod:`repro.testkit.restart`) asserts that
post-recovery answers are bit-identical to an uninterrupted run and that
the recovered engines did not re-pay the adaptation ramp.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import threading
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..config import EngineConfig, GatewayConfig
from ..errors import (
    BadRequestError,
    CatalogError,
    SchemaError,
    SnapshotError,
    StorageError,
)
from ..service import H2OService
from ..sql.types import DataType
from ..storage.column_group import ColumnGroup
from ..storage.column_layout import SingleColumn
from ..storage.encoded_layout import encode_column
from ..storage.io import save_table
from ..storage.layout import Layout, LayoutKind
from ..storage.relation import Table
from ..storage.schema import Attribute, Schema
from .wal import (
    KIND_APPEND,
    KIND_CREATE,
    WALRecord,
    WriteAheadLog,
    scan_wal,
)

PathLike = Union[str, Path]

#: Table names must be safe both as file stems and as SQL identifiers
#: (the parser's FROM clause takes plain identifiers, so no dots here;
#: the storage tier itself handles dotted stems — see
#: :func:`repro.storage.io._sibling`).
_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]{0,63}$")

_SNAP_RE = re.compile(r"^snap-(\d{16})-(\d{6})$")

SNAPSHOT_FORMAT = 1


def _validate_name(name: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise BadRequestError(
            f"invalid table name {name!r}: expected "
            "[A-Za-z_][A-Za-z0-9_]{0,63}"
        )
    return name


def _build_schema(attributes: Sequence) -> Schema:
    """Schema from JSON-ish attribute specs.

    Accepts ``[{"name": ..., "dtype": ...}, ...]`` or ``[(name, dtype),
    ...]``; dtype defaults to int64.
    """
    attrs: List[Attribute] = []
    for item in attributes:
        if isinstance(item, Mapping):
            name, dtype = item.get("name"), item.get("dtype", "int64")
        else:
            name, dtype = item
        if not isinstance(name, str):
            raise BadRequestError(f"attribute name must be a string: {item!r}")
        try:
            attrs.append(Attribute(name, DataType.from_any(dtype)))
        except SchemaError as exc:
            raise BadRequestError(str(exc)) from exc
    if not attrs:
        raise BadRequestError("a table needs at least one attribute")
    try:
        return Schema(attrs)
    except SchemaError as exc:
        raise BadRequestError(str(exc)) from exc


def _coerce_columns(
    schema: Schema, columns: Optional[Mapping[str, object]]
) -> Dict[str, np.ndarray]:
    """Validate and dtype-coerce a column payload against ``schema``.

    Every attribute must be present, all columns equal length; values
    are cast to the declared dtype (loudly on lossy input like strings).
    """
    if columns is None:
        columns = {}
    if not isinstance(columns, Mapping):
        raise BadRequestError("columns must be an object of name -> values")
    unknown = sorted(set(columns) - set(schema.names))
    if unknown:
        raise BadRequestError(f"unknown columns: {unknown}")
    if columns:
        missing = sorted(set(schema.names) - set(columns))
        if missing:
            raise BadRequestError(f"missing columns: {missing}")
    out: Dict[str, np.ndarray] = {}
    length: Optional[int] = None
    for attr in schema:
        raw = columns.get(attr.name, [])
        try:
            array = np.asarray(raw, dtype=attr.dtype.numpy_dtype)
        except (TypeError, ValueError) as exc:
            raise BadRequestError(
                f"column {attr.name!r} is not valid {attr.dtype.value}: {exc}"
            ) from exc
        if array.ndim != 1:
            raise BadRequestError(
                f"column {attr.name!r} must be one-dimensional"
            )
        if length is None:
            length = int(array.shape[0])
        elif int(array.shape[0]) != length:
            raise BadRequestError(
                f"column {attr.name!r} has {array.shape[0]} values, "
                f"expected {length}"
            )
        out[attr.name] = array
    return out


def _fsync_path(path: Path) -> None:
    """fsync one file or directory by path.

    Directory fsyncs persist the directory *entries* (new files, the
    manifest rename); without them a power loss can leave a snapshot
    whose data files exist in the page cache only.
    """
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# Snapshot serialization ----------------------------------------------------


def _layout_descriptors(table: Table) -> List[Dict[str, object]]:
    """The table's physical configuration as JSON-able descriptors."""
    descriptors: List[Dict[str, object]] = []
    for layout in table.layouts:
        if layout.kind is LayoutKind.ENCODED:
            # Codes/dictionaries are not persisted — the codec is
            # re-derived deterministically from the logical column at
            # rebuild time (the snapshot stores columns post-
            # permutation, so the re-encode sees identical values).
            descriptors.append(
                {
                    "kind": "encoded",
                    "attrs": list(layout.attrs),
                    "codec": layout.codec,
                }
            )
            continue
        kind = {
            LayoutKind.COLUMN: "column",
            LayoutKind.GROUP: "group",
            LayoutKind.ROW: "row",
        }[layout.kind]
        descriptors.append({"kind": kind, "attrs": list(layout.attrs)})
    return descriptors


def _rebuild_layouts(
    schema: Schema,
    columns: Mapping[str, np.ndarray],
    descriptors: Sequence[Mapping[str, object]],
) -> List[Layout]:
    """Materialize persisted layout descriptors over loaded columns."""
    layouts: List[Layout] = []
    for desc in descriptors:
        attrs = [str(a) for a in desc["attrs"]]
        kind = str(desc["kind"])
        if kind == "column":
            (name,) = attrs
            layouts.append(SingleColumn(name, columns[name]))
        elif kind == "encoded":
            (name,) = attrs
            encoded = encode_column(
                name,
                columns[name],
                dict_max_cardinality=float("inf"),
                force=str(desc.get("codec") or "") or None,
            )
            if encoded is not None:
                layouts.append(encoded)
            # A declined re-encode (possible only if the column's stats
            # changed, which a faithful snapshot precludes) is dropped:
            # encoded layouts are additive replicas, so attribute
            # coverage still holds via the plain descriptors.
        elif kind in ("group", "row"):
            dtype = schema.common_dtype(attrs).numpy_dtype
            data = np.column_stack(
                [columns[name].astype(dtype, copy=False) for name in attrs]
            ).astype(dtype, copy=False)
            data = np.ascontiguousarray(data)
            layouts.append(
                ColumnGroup(tuple(attrs), data, full_width=(kind == "row"))
            )
        else:
            raise SnapshotError(f"unknown layout kind {kind!r} in snapshot")
    return layouts


def write_snapshot(
    directory: PathLike,
    lsn: int,
    seq: int,
    tables: Mapping[str, Table],
    states: Mapping[str, Mapping[str, object]],
    *,
    fsync: bool = True,
) -> Path:
    """Write one complete snapshot directory; returns its path.

    Layout on disk::

        snap-<lsn:016>-<seq:06>/
            tables/<name>.npz       logical columns (storage.io format)
            tables/<name>.json      schema + row count sidecar
            state.json              per-table layouts + adaptation state
            manifest.json           written last — marks completeness

    ``seq`` disambiguates checkpoints taken at the same LSN (the rows
    didn't change but the learned state did).

    Durability ordering (``fsync=True``): every data file and the
    directory entries holding them are fsync'd *before* the manifest is
    renamed into place, and the directories are fsync'd again after the
    rename.  The manifest therefore never advertises a snapshot whose
    contents could still be page-cache-only — callers may compact the
    WAL the moment this returns, even against power loss.
    """
    directory = Path(directory)
    snap_dir = directory / f"snap-{lsn:016d}-{seq:06d}"
    if snap_dir.exists():
        shutil.rmtree(snap_dir)
    tables_dir = snap_dir / "tables"
    tables_dir.mkdir(parents=True)
    for name, table in tables.items():
        save_table(table, tables_dir / name)
    state = {
        "tables": {
            name: {
                "layouts": _layout_descriptors(table),
                "adaptation": states.get(name, {}),
            }
            for name, table in tables.items()
        }
    }
    (snap_dir / "state.json").write_text(json.dumps(state))
    if fsync:
        for child in sorted(tables_dir.iterdir()):
            _fsync_path(child)
        _fsync_path(snap_dir / "state.json")
        _fsync_path(tables_dir)
        _fsync_path(snap_dir)
    manifest = {
        "format": SNAPSHOT_FORMAT,
        "lsn": int(lsn),
        "seq": int(seq),
        "tables": sorted(tables),
    }
    manifest_path = snap_dir / "manifest.json"
    tmp = manifest_path.with_name("manifest.json.tmp")
    with open(tmp, "w") as handle:
        json.dump(manifest, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, manifest_path)
    if fsync:
        _fsync_path(snap_dir)
        # The snapshots directory itself (its entry for snap_dir), and
        # its own entry in the data dir — mkdir(parents=True) above may
        # have just created it.
        _fsync_path(directory)
        _fsync_path(directory.parent)
    return snap_dir


def list_snapshots(directory: PathLike) -> List[Tuple[int, int, Path]]:
    """Complete snapshots as (lsn, seq, path), newest first."""
    directory = Path(directory)
    found: List[Tuple[int, int, Path]] = []
    if not directory.exists():
        return found
    for child in directory.iterdir():
        match = _SNAP_RE.match(child.name)
        if match and (child / "manifest.json").exists():
            found.append((int(match.group(1)), int(match.group(2)), child))
    found.sort(reverse=True)
    return found


def load_snapshot(
    snap_dir: PathLike,
) -> Tuple[int, Dict[str, Table], Dict[str, Dict[str, object]]]:
    """Load one snapshot: (lsn, tables, per-table adaptation state).

    A snapshot that advertised completeness (manifest present) but fails
    to load raises :class:`~repro.errors.SnapshotError` loudly — falling
    back silently would resurrect stale data.
    """
    snap_dir = Path(snap_dir)
    try:
        manifest = json.loads((snap_dir / "manifest.json").read_text())
        if manifest.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotError(
                f"snapshot {snap_dir} has unsupported format "
                f"{manifest.get('format')!r}"
            )
        state = json.loads((snap_dir / "state.json").read_text())
        tables: Dict[str, Table] = {}
        adaptation: Dict[str, Dict[str, object]] = {}
        for name in manifest["tables"]:
            meta = json.loads(
                (snap_dir / "tables" / f"{name}.json").read_text()
            )
            schema = _build_schema(meta["attributes"])
            with np.load(snap_dir / "tables" / f"{name}.npz") as archive:
                columns = {
                    attr: archive[attr].copy() for attr in schema.names
                }
            per_table = state["tables"][name]
            layouts = _rebuild_layouts(
                schema, columns, per_table["layouts"]
            )
            table = Table(name, schema, layouts)
            if table.num_rows != int(meta["num_rows"]):
                raise SnapshotError(
                    f"snapshot {snap_dir} table {name!r}: metadata says "
                    f"{meta['num_rows']} rows, data has {table.num_rows}"
                )
            tables[name] = table
            adaptation[name] = dict(per_table.get("adaptation", {}))
        return int(manifest["lsn"]), tables, adaptation
    except SnapshotError:
        raise
    except Exception as exc:
        raise SnapshotError(
            f"snapshot {snap_dir} is complete-but-unreadable: {exc}"
        ) from exc


# The durable store ----------------------------------------------------------


class DurableStore:
    """An :class:`H2OService` whose tables and learned state persist.

    All mutations go WAL-first under one apply lock (reads — queries —
    never take it; they run through the service against snapshot-
    isolated layouts).  Construction *is* recovery: pointing a store at
    a directory with prior state loads the latest snapshot, replays the
    WAL tail, and re-seeds the engines.
    """

    def __init__(
        self,
        data_dir: PathLike,
        *,
        engine_config: Optional[EngineConfig] = None,
        gateway_config: Optional[GatewayConfig] = None,
        num_workers: int = 2,
        default_timeout: Optional[float] = 30.0,
        seed_adaptation: bool = True,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.engine_config = engine_config or EngineConfig()
        self.gateway_config = gateway_config or GatewayConfig()
        self._lock = threading.RLock()
        self._snap_dir = self.data_dir / "snapshots"
        wal_path = self.data_dir / "wal.log"

        # ---- Recovery: snapshot, then WAL tail --------------------------
        self.recovered = False
        self.replayed_records = 0
        self.torn_tail_discarded = False
        tables: Dict[str, Table] = {}
        adaptation: Dict[str, Dict[str, object]] = {}
        applied_lsn = 0
        snapshots = list_snapshots(self._snap_dir)
        if snapshots:
            lsn, _, snap_path = snapshots[0]
            applied_lsn, tables, adaptation = load_snapshot(snap_path)
            self.recovered = True
            self._checkpoint_seq = snapshots[0][1] + 1
        else:
            self._checkpoint_seq = 0

        scan = scan_wal(wal_path)  # raises WALCorruptionError mid-log
        self.torn_tail_discarded = scan.torn_tail
        max_lsn = applied_lsn
        for record in scan.records:
            max_lsn = max(max_lsn, record.lsn)
            if record.lsn <= applied_lsn:
                # Snapshot-newer-than-WAL (or overlapping tail after a
                # crash between snapshot completion and WAL compaction):
                # the snapshot already contains this mutation.
                continue
            self._replay(tables, record)
            self.recovered = True
            self.replayed_records += 1

        self._wal = WriteAheadLog(
            wal_path, fsync=self.gateway_config.wal_fsync
        )
        if scan.torn_tail:
            self._wal.truncate_to(scan.good_bytes)
        self._applied_lsn = max_lsn
        self._next_lsn = max_lsn + 1
        self._records_since_checkpoint = len(scan.records)
        self.checkpoints = 0
        self.apply_divergences = 0

        # ---- Service + engines ------------------------------------------
        self.service = H2OService(
            config=self.engine_config,
            num_workers=num_workers,
            default_timeout=default_timeout,
        )
        self.system = self.service.system
        for name in sorted(tables):
            self.service.register(tables[name])
        if seed_adaptation:
            for name, state in adaptation.items():
                if state:
                    self.system.engine_for(name).seed_adaptation_state(state)

    # -- replay ------------------------------------------------------------

    @staticmethod
    def _replay(tables: Dict[str, Table], record: WALRecord) -> None:
        if record.kind == KIND_CREATE:
            schema = _build_schema(record.attributes)
            columns = {
                attr.name: record.columns.get(
                    attr.name, np.empty(0, dtype=attr.dtype.numpy_dtype)
                )
                for attr in schema
            }
            tables[record.table] = Table.from_columns(
                record.table, schema, columns
            )
        elif record.kind == KIND_APPEND:
            table = tables.get(record.table)
            if table is None:
                raise SnapshotError(
                    f"WAL append for unknown table {record.table!r} "
                    "(snapshot and log disagree)"
                )
            if record.num_rows:
                table.append_rows(record.columns)
        else:
            raise SnapshotError(
                f"unknown WAL record kind {record.kind!r}"
            )

    # -- mutations (WAL-first, applied under the lock) ---------------------

    def create_table(
        self,
        name: str,
        attributes: Sequence,
        columns: Optional[Mapping[str, object]] = None,
    ) -> Table:
        """Create (and optionally seed) a table durably."""
        _validate_name(name)
        schema = _build_schema(attributes)
        arrays = _coerce_columns(schema, columns)
        with self._lock:
            if name in self.system.catalog:
                raise CatalogError(f"table {name!r} already exists")
            lsn = self._next_lsn
            if self.gateway_config.wal_enabled:
                self._wal.append(
                    WALRecord(
                        kind=KIND_CREATE,
                        table=name,
                        lsn=lsn,
                        attributes=[
                            (a.name, a.dtype.value) for a in schema
                        ],
                        columns=arrays,
                    )
                )
            full = {
                attr.name: arrays.get(
                    attr.name, np.empty(0, dtype=attr.dtype.numpy_dtype)
                )
                for attr in schema
            }
            table = Table.from_columns(name, schema, full)
            self.service.register(table)
            self._next_lsn = lsn + 1
            self._applied_lsn = lsn
            self._note_records(1)
            return table

    def append(self, name: str, columns: Mapping[str, object]) -> int:
        """Durably append one batch of rows; returns the row count."""
        (outcome,) = self.append_many([(name, columns)])
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome

    def append_many(
        self, items: Sequence[Tuple[str, Mapping[str, object]]]
    ) -> List[Union[int, Exception]]:
        """One group commit for many appends.

        Validates every item first; the valid subset is written to the
        WAL as **one batch with one fsync** and then applied.  Returns a
        per-item outcome aligned with the input: appended row count, or
        the exception describing why that item was rejected (invalid
        items never reach the WAL).
        """
        outcomes: List[Union[int, Exception]] = [0] * len(items)
        with self._lock:
            records: List[WALRecord] = []
            applies: List[Tuple[int, Table, Dict[str, np.ndarray]]] = []
            lsn = self._next_lsn
            for index, (name, columns) in enumerate(items):
                try:
                    _validate_name(name)
                    if name not in self.system.catalog:
                        raise CatalogError(f"unknown table {name!r}")
                    table = self.system.catalog.get(name)
                    arrays = _coerce_columns(table.schema, columns)
                    if not arrays or next(iter(arrays.values())).size == 0:
                        outcomes[index] = 0
                        continue
                except Exception as exc:  # per-item isolation
                    outcomes[index] = exc
                    continue
                records.append(
                    WALRecord(
                        kind=KIND_APPEND,
                        table=name,
                        lsn=lsn,
                        attributes=[
                            (a.name, a.dtype.value) for a in table.schema
                        ],
                        columns=arrays,
                    )
                )
                applies.append((index, lsn, table, arrays))
                lsn += 1
            wal_logged = bool(records and self.gateway_config.wal_enabled)
            if wal_logged:
                self._wal.append_batch(records)  # the group commit
            for index, item_lsn, table, arrays in applies:
                try:
                    # _coerce_columns validated shape/dtype above, so
                    # this should never raise — but if it does after
                    # the WAL fsync, the other items in the batch (some
                    # already applied and durable) must not be reported
                    # failed with it.
                    table.append_rows(arrays)
                except Exception as exc:
                    outcomes[index] = self._apply_divergence(
                        table.name, item_lsn, exc, wal_logged
                    )
                    continue
                outcomes[index] = int(next(iter(arrays.values())).shape[0])
            if records:
                # LSNs advance for every WAL-logged record, applied or
                # not: the log is authoritative and replay will apply a
                # diverged record on restart.
                self._next_lsn = lsn
                self._applied_lsn = lsn - 1
                self._note_records(len(records))
        return outcomes

    def _apply_divergence(
        self, name: str, lsn: int, exc: Exception, wal_logged: bool
    ) -> Exception:
        """Describe an append that failed *after* its WAL record.

        In-memory and durable state now disagree for this record until
        a restart replays it; count it (surfaced via :meth:`stats` and
        ``/metrics``) and hand the caller an error that says so.
        """
        if not wal_logged:
            return exc
        self.apply_divergences += 1
        failure = StorageError(
            f"append to {name!r} (lsn {lsn}) is durable in the WAL but "
            f"failed to apply in memory: {exc}; the write will be "
            "applied by WAL replay on the next restart"
        )
        failure.__cause__ = exc
        return failure

    def _note_records(self, count: int) -> None:
        """Auto-checkpoint bookkeeping (caller holds the lock)."""
        self._records_since_checkpoint += count
        every = self.gateway_config.snapshot_every_records
        if every and self._records_since_checkpoint >= every:
            self.checkpoint()

    # -- reads -------------------------------------------------------------

    def execute(self, query, session=None, timeout: Optional[float] = None):
        """Run one query through the service (never takes the lock)."""
        return self.service.execute(query, session=session, timeout=timeout)

    def tables(self) -> List[str]:
        with self._lock:
            return sorted(self.system.catalog)

    def table_infos(self) -> List[Dict[str, object]]:
        """Name + row count per table, snapshotted under the apply lock
        so a concurrent create cannot mutate the catalog mid-listing."""
        with self._lock:
            return [
                {
                    "name": name,
                    "num_rows": self.system.catalog.get(name).num_rows,
                }
                for name in sorted(self.system.catalog)
            ]

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self) -> Path:
        """Snapshot the whole store and compact the WAL.

        Holds the apply lock, so the snapshot is consistent with one
        LSN; queries keep running (they never take this lock).  The WAL
        is compacted only *after* the snapshot is durable: every data
        file, directory entry and the manifest rename are fsync'd first
        (when ``wal_fsync`` is on), so a power loss after the compaction
        can never leave an empty WAL pointing at an invisible or
        unreadable snapshot.  A crash *between* snapshot and compaction
        merely replays a tail the snapshot already contains, which
        recovery skips by LSN.
        """
        with self._lock:
            tables = {
                name: self.system.catalog.get(name)
                for name in self.system.catalog
            }
            states = {
                name: self.system.engine_for(name).adaptation_state()
                for name in tables
            }
            snap = write_snapshot(
                self._snap_dir,
                self._applied_lsn,
                self._checkpoint_seq,
                tables,
                states,
                fsync=self.gateway_config.wal_fsync,
            )
            self._checkpoint_seq += 1
            self._wal.rewrite([])
            self._records_since_checkpoint = 0
            self.checkpoints += 1
            self._prune_snapshots()
            return snap

    def _prune_snapshots(self) -> None:
        keep = self.gateway_config.snapshots_keep
        for _, _, path in list_snapshots(self._snap_dir)[keep:]:
            shutil.rmtree(path, ignore_errors=True)

    # -- lifecycle ---------------------------------------------------------

    def close(self, checkpoint: bool = True) -> None:
        """Graceful shutdown: optional final checkpoint, then release."""
        if checkpoint:
            self.checkpoint()
        self.service.close()
        self._wal.close()

    def abandon(self) -> None:
        """Release resources *without* flushing state (test crashes).

        Leaves the WAL and snapshots exactly as a SIGKILL would: used by
        the restart-recovery oracle to simulate dying mid-workload.
        """
        self.service.close()
        self._wal.close()

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- telemetry ---------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        with self._lock:
            snap: Dict[str, object] = {
                "applied_lsn": self._applied_lsn,
                "apply_divergences": self.apply_divergences,
                "checkpoints": self.checkpoints,
                "records_since_checkpoint": self._records_since_checkpoint,
                "recovered": self.recovered,
                "replayed_records": self.replayed_records,
                "torn_tail_discarded": self.torn_tail_discarded,
                "snapshots_on_disk": len(list_snapshots(self._snap_dir)),
                "tables": len(self.system.catalog),
            }
            snap.update(
                {f"wal_{k}": v for k, v in self._wal.stats().items()}
            )
            return snap
