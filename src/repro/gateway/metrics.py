"""Prometheus text exposition for ``GET /metrics``.

Renders the classic ``text/plain; version=0.0.4`` format by hand (no
client library): ``# HELP``/``# TYPE`` preamble per family, one sample
per line, labels escaped.  Sources: :class:`~repro.service.ServiceStats`
(latency percentiles, completion counters), the gateway's per-endpoint
request counters, per-tenant counters, the WAL/snapshot counters of the
:class:`~repro.gateway.persist.DurableStore`, and the health rung.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _sample(
    name: str, labels: Mapping[str, str], value: object
) -> str:
    if labels:
        inner = ",".join(
            f'{k}="{_escape(str(v))}"' for k, v in sorted(labels.items())
        )
        return f"{name}{{{inner}}} {value}"
    return f"{name} {value}"


class MetricsRenderer:
    """Accumulates families then renders one exposition document."""

    def __init__(self) -> None:
        self._lines: List[str] = []

    def family(
        self,
        name: str,
        kind: str,
        help_text: str,
        samples: Iterable[Tuple[Mapping[str, str], object]],
    ) -> None:
        self._lines.append(f"# HELP {name} {help_text}")
        self._lines.append(f"# TYPE {name} {kind}")
        for labels, value in samples:
            self._lines.append(_sample(name, labels, value))

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


_HEALTH_RUNG = {"healthy": 0, "degraded": 1, "closed": 2}


def render_metrics(
    service_stats: Mapping[str, float],
    endpoint_counters: Mapping[Tuple[str, int], int],
    tenant_stats: Mapping[str, Mapping[str, object]],
    store_stats: Mapping[str, object],
    health_status: str,
    batcher_stats: Mapping[str, int],
    engine_stats: Mapping[str, Mapping[str, object]] = {},
) -> str:
    """The whole ``/metrics`` document as one string."""
    out = MetricsRenderer()
    out.family(
        "h2o_gateway_requests_total",
        "counter",
        "HTTP requests served, by endpoint and status code.",
        (
            ({"endpoint": endpoint, "status": str(status)}, count)
            for (endpoint, status), count in sorted(
                endpoint_counters.items()
            )
        ),
    )
    out.family(
        "h2o_gateway_health_rung",
        "gauge",
        "Degradation rung: 0 healthy, 1 degraded, 2 closed.",
        [({}, _HEALTH_RUNG.get(health_status, 2))],
    )
    out.family(
        "h2o_gateway_append_batches_total",
        "counter",
        "Group-commit batches flushed by the append coalescer.",
        [({}, batcher_stats.get("batches", 0))],
    )
    out.family(
        "h2o_gateway_appends_coalesced_total",
        "counter",
        "Append requests that rode in a shared group-commit batch.",
        [({}, batcher_stats.get("items", 0))],
    )

    out.family(
        "h2o_service_queries_total",
        "counter",
        "Queries by outcome, as counted by ServiceStats.",
        (
            ({"outcome": key}, int(service_stats.get(key, 0)))
            for key in (
                "submitted",
                "completed",
                "rejected",
                "timeouts",
                "failed",
                "cancelled",
            )
        ),
    )
    out.family(
        "h2o_service_latency_seconds",
        "summary",
        "Query latency quantiles over the recent reservoir.",
        [
            ({"quantile": "0.5"}, service_stats.get("p50_ms", 0.0) / 1e3),
            ({"quantile": "0.99"}, service_stats.get("p99_ms", 0.0) / 1e3),
        ],
    )
    out.family(
        "h2o_service_in_flight",
        "gauge",
        "Queries currently admitted into the service.",
        [({}, int(service_stats.get("in_flight", 0)))],
    )

    out.family(
        "h2o_tenant_requests_total",
        "counter",
        "Gateway requests per tenant.",
        (
            ({"tenant": name}, int(stats.get("requests", 0)))
            for name, stats in sorted(tenant_stats.items())
        ),
    )
    out.family(
        "h2o_tenant_rejected_total",
        "counter",
        "Requests rejected at a tenant's own quota.",
        (
            ({"tenant": name}, int(stats.get("rejected_quota", 0)))
            for name, stats in sorted(tenant_stats.items())
        ),
    )
    out.family(
        "h2o_tenant_in_flight",
        "gauge",
        "In-flight requests per tenant.",
        (
            ({"tenant": name}, int(stats.get("in_flight", 0)))
            for name, stats in sorted(tenant_stats.items())
        ),
    )

    out.family(
        "h2o_wal_records_total",
        "counter",
        "Records appended to the write-ahead log.",
        [({}, int(store_stats.get("wal_records_written", 0)))],
    )
    out.family(
        "h2o_wal_bytes_total",
        "counter",
        "Bytes appended to the write-ahead log.",
        [({}, int(store_stats.get("wal_bytes_written", 0)))],
    )
    out.family(
        "h2o_wal_fsyncs_total",
        "counter",
        "fsync calls issued by the WAL (one per group commit).",
        [({}, int(store_stats.get("wal_fsyncs", 0)))],
    )
    out.family(
        "h2o_wal_group_commits_total",
        "counter",
        "Group-commit batches written to the WAL.",
        [({}, int(store_stats.get("wal_group_commits", 0)))],
    )
    out.family(
        "h2o_snapshot_checkpoints_total",
        "counter",
        "Completed store snapshots this process lifetime.",
        [({}, int(store_stats.get("checkpoints", 0)))],
    )
    out.family(
        "h2o_store_applied_lsn",
        "gauge",
        "Highest log sequence number applied to the store.",
        [({}, int(store_stats.get("applied_lsn", 0)))],
    )
    out.family(
        "h2o_store_tables",
        "gauge",
        "Registered tables.",
        [({}, int(store_stats.get("tables", 0)))],
    )

    out.family(
        "h2o_scan_morsels_total",
        "counter",
        "Morsels considered by zone-map pruning, per table engine.",
        (
            ({"table": name}, int(stats.get("morsels_total", 0)))
            for name, stats in sorted(engine_stats.items())
        ),
    )
    out.family(
        "h2o_scan_morsels_pruned_total",
        "counter",
        "Morsels skipped by zone-map pruning, per table engine.",
        (
            ({"table": name}, int(stats.get("morsels_pruned", 0)))
            for name, stats in sorted(engine_stats.items())
        ),
    )
    out.family(
        "h2o_table_pruned_fraction",
        "gauge",
        "Cumulative fraction of morsels pruned (1.0 = perfect).",
        (
            ({"table": name}, float(stats.get("pruned_fraction", 0.0)))
            for name, stats in sorted(engine_stats.items())
        ),
    )
    out.family(
        "h2o_table_clustered_fraction",
        "gauge",
        "Fraction of rows inside the clustered prefix (0 = unclustered).",
        (
            ({"table": name}, float(stats.get("clustered_fraction", 0.0)))
            for name, stats in sorted(engine_stats.items())
        ),
    )
    return out.render()
