"""Run the gateway: ``python -m repro.gateway --data-dir DIR [--port N]``.

Prints one readiness line to stdout once the socket is bound::

    h2o-gateway listening on 127.0.0.1:8080

(the integration harness and container health checks parse it), then
serves until SIGTERM/SIGINT, which trigger a graceful shutdown: stop
accepting, drain in-flight group commits, final checkpoint.  A SIGKILL
skips all of that by definition — recovery then runs from the snapshot
+ WAL tail, which is exactly what the restart tests exercise.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys

from ..config import EngineConfig, GatewayConfig
from .persist import DurableStore
from .server import Gateway


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.gateway",
        description="H2O network gateway with WAL + snapshot persistence",
    )
    parser.add_argument("--data-dir", required=True, help="durable state dir")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8080, help="0 = any free port"
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--tenant-quota", type=int, default=GatewayConfig.tenant_quota
    )
    parser.add_argument(
        "--no-wal", action="store_true", help="disable the write-ahead log"
    )
    parser.add_argument(
        "--no-fsync", action="store_true", help="WAL without per-batch fsync"
    )
    parser.add_argument(
        "--snapshot-every",
        type=int,
        default=GatewayConfig.snapshot_every_records,
        help="auto-checkpoint every N WAL records (0 = manual)",
    )
    parser.add_argument(
        "--no-final-checkpoint",
        action="store_true",
        help="skip the checkpoint on graceful shutdown",
    )
    return parser


async def serve(args: argparse.Namespace) -> int:
    gateway_config = GatewayConfig(
        host=args.host,
        port=args.port,
        tenant_quota=args.tenant_quota,
        wal_enabled=not args.no_wal,
        wal_fsync=not args.no_fsync,
        snapshot_every_records=args.snapshot_every,
    )
    store = DurableStore(
        args.data_dir,
        engine_config=EngineConfig(),
        gateway_config=gateway_config,
        num_workers=args.workers,
    )
    gateway = Gateway(store, gateway_config)
    await gateway.start()
    print(
        f"h2o-gateway listening on {args.host}:{gateway.port}",
        flush=True,
    )

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # non-unix platforms
            pass
    await stop.wait()
    print("h2o-gateway shutting down", flush=True)
    await gateway.close(checkpoint=not args.no_final_checkpoint)
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(serve(args))
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
