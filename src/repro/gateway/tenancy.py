"""Multi-tenant admission on top of the service's session machinery.

Each distinct API key maps to a :class:`Tenant`: its own
:class:`~repro.service.Session` (per-tenant submitted/completed/timeout
counters for free), its own :class:`~repro.service.AdmissionController`
quota bounding *that tenant's* in-flight requests, and per-endpoint
request counters for ``/metrics``.  The service-wide admission bound
still applies underneath — the tenant quota is the fairness layer that
keeps one hot tenant from consuming the whole service-wide budget.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Optional

from ..errors import AuthError, TenantQuotaError
from ..service import AdmissionController, H2OService, Session


class Tenant:
    """One API key's identity, session, quota and counters."""

    def __init__(
        self, name: str, session: Session, quota: int
    ) -> None:
        self.name = name
        self.session = session
        self.admission = AdmissionController(quota)
        self._lock = threading.Lock()
        self.requests = 0
        self.rejected = 0

    def acquire(self) -> None:
        """Claim one in-flight slot or raise (HTTP 429)."""
        with self._lock:
            self.requests += 1
        if not self.admission.try_acquire():
            with self._lock:
                self.rejected += 1
            raise TenantQuotaError(
                f"tenant {self.name!r} is at its quota of "
                f"{self.admission.capacity} in-flight requests"
            )

    def release(self) -> None:
        self.admission.release()

    def stats(self) -> Dict[str, object]:
        with self._lock:
            snap: Dict[str, object] = {
                "requests": self.requests,
                "rejected_quota": self.rejected,
            }
        snap["in_flight"] = self.admission.in_flight
        snap.update(self.session.stats())
        return snap


class TenantRegistry:
    """API key → tenant, created on first use — but *bounded*.

    Tenant state (a session, an admission quota, a ``/metrics`` label)
    is allocated per distinct key, so an unvalidated registry would let
    any client grow memory and metrics cardinality without limit by
    spraying fresh keys.  Two defenses:

    - an optional **allowlist** (``allowed_keys``): when configured,
      unknown keys are rejected with :class:`~repro.errors.AuthError`
      (HTTP 401) before any state is allocated;
    - a **cap** (``max_tenants``) on distinct keyed tenants: beyond it,
      new keys share one ``tenant-overflow`` tenant — they still get
      admission control, just not isolation from each other.

    Key material is never exposed: the tenant's public name is a short
    stable digest of the key (the default tenant keeps its plain name),
    so ``/metrics`` labels don't leak credentials.
    """

    #: Public name of the shared tenant handed to keys past the cap.
    OVERFLOW_NAME = "tenant-overflow"

    def __init__(
        self,
        service: H2OService,
        quota: int,
        default_tenant: str = "public",
        allowed_keys: Optional[Iterable[str]] = None,
        max_tenants: int = 64,
    ) -> None:
        self._service = service
        self._quota = quota
        self._default = default_tenant
        self._allowed = (
            None if allowed_keys is None else frozenset(allowed_keys)
        )
        self._max = max(1, int(max_tenants))
        self._lock = threading.Lock()
        self._tenants: Dict[str, Tenant] = {}
        self._keyed = 0  # tenants in _tenants with a non-empty key
        self._overflow: Optional[Tenant] = None

    @staticmethod
    def _public_name(key: str) -> str:
        import hashlib

        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:12]
        return f"tenant-{digest}"

    def resolve(self, api_key: Optional[str]) -> Tenant:
        """The tenant for one request's API key (anonymous → default)."""
        key = api_key or ""
        if key and self._allowed is not None and key not in self._allowed:
            raise AuthError("unknown API key")
        with self._lock:
            tenant = self._tenants.get(key)
            if tenant is not None:
                return tenant
            if key and self._keyed >= self._max:
                if self._overflow is None:
                    self._overflow = Tenant(
                        self.OVERFLOW_NAME,
                        self._service.session(client=self.OVERFLOW_NAME),
                        self._quota,
                    )
                return self._overflow
            name = self._public_name(key) if key else self._default
            session = self._service.session(client=name)
            tenant = Tenant(name, session, self._quota)
            self._tenants[key] = tenant
            if key:
                self._keyed += 1
            return tenant

    def tenants(self) -> Dict[str, Tenant]:
        """Public-name → tenant (a consistent copy)."""
        with self._lock:
            out = {t.name: t for t in self._tenants.values()}
            if self._overflow is not None:
                out[self._overflow.name] = self._overflow
            return out
