"""Multi-tenant admission on top of the service's session machinery.

Each distinct API key maps to a :class:`Tenant`: its own
:class:`~repro.service.Session` (per-tenant submitted/completed/timeout
counters for free), its own :class:`~repro.service.AdmissionController`
quota bounding *that tenant's* in-flight requests, and per-endpoint
request counters for ``/metrics``.  The service-wide admission bound
still applies underneath — the tenant quota is the fairness layer that
keeps one hot tenant from consuming the whole service-wide budget.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from ..errors import TenantQuotaError
from ..service import AdmissionController, H2OService, Session


class Tenant:
    """One API key's identity, session, quota and counters."""

    def __init__(
        self, name: str, session: Session, quota: int
    ) -> None:
        self.name = name
        self.session = session
        self.admission = AdmissionController(quota)
        self._lock = threading.Lock()
        self.requests = 0
        self.rejected = 0

    def acquire(self) -> None:
        """Claim one in-flight slot or raise (HTTP 429)."""
        with self._lock:
            self.requests += 1
        if not self.admission.try_acquire():
            with self._lock:
                self.rejected += 1
            raise TenantQuotaError(
                f"tenant {self.name!r} is at its quota of "
                f"{self.admission.capacity} in-flight requests"
            )

    def release(self) -> None:
        self.admission.release()

    def stats(self) -> Dict[str, object]:
        with self._lock:
            snap: Dict[str, object] = {
                "requests": self.requests,
                "rejected_quota": self.rejected,
            }
        snap["in_flight"] = self.admission.in_flight
        snap.update(self.session.stats())
        return snap


class TenantRegistry:
    """API key → tenant, created on first use.

    Key material is never exposed: the tenant's public name is a short
    stable digest of the key (the default tenant keeps its plain name),
    so ``/metrics`` labels don't leak credentials.
    """

    def __init__(
        self,
        service: H2OService,
        quota: int,
        default_tenant: str = "public",
    ) -> None:
        self._service = service
        self._quota = quota
        self._default = default_tenant
        self._lock = threading.Lock()
        self._tenants: Dict[str, Tenant] = {}

    @staticmethod
    def _public_name(key: str) -> str:
        import hashlib

        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:12]
        return f"tenant-{digest}"

    def resolve(self, api_key: Optional[str]) -> Tenant:
        """The tenant for one request's API key (anonymous → default)."""
        key = api_key or ""
        with self._lock:
            tenant = self._tenants.get(key)
            if tenant is None:
                name = self._public_name(key) if key else self._default
                session = self._service.session(client=name)
                tenant = Tenant(name, session, self._quota)
                self._tenants[key] = tenant
            return tenant

    def tenants(self) -> Dict[str, Tenant]:
        """Public-name → tenant (a consistent copy)."""
        with self._lock:
            return {t.name: t for t in self._tenants.values()}
