"""A small synchronous client for the gateway (stdlib ``http.client``).

Used by the tests, the benchmark harness and the CI smoke driver; it is
also a reasonable reference for real callers.  One client holds one
keep-alive connection and is **not** thread-safe — concurrency benches
open one client per thread, mirroring real connection-per-worker use.
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, List, Mapping, Optional, Sequence

from ..errors import GatewayError


class GatewayHTTPError(GatewayError):
    """A non-2xx response, carrying the decoded error payload."""

    def __init__(self, status: int, payload: Mapping[str, object]) -> None:
        self.status = status
        self.payload = dict(payload)
        super().__init__(
            f"HTTP {status}: {payload.get('error', '?')}: "
            f"{payload.get('message', '')}"
        )
        self.is_retryable = bool(payload.get("retryable", False))


class GatewayClient:
    """Synchronous JSON client over one keep-alive connection."""

    def __init__(
        self,
        host: str,
        port: int,
        api_key: Optional[str] = None,
        timeout: float = 30.0,
        api_key_header: str = "x-api-key",
    ) -> None:
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)
        self._headers = {"Content-Type": "application/json"}
        if api_key:
            self._headers[api_key_header] = api_key

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[object] = None,
        raise_for_status: bool = True,
    ):
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        self._conn.request(method, path, body=payload, headers=self._headers)
        response = self._conn.getresponse()
        raw = response.read()
        content_type = response.getheader("Content-Type", "")
        if content_type.startswith("application/json"):
            decoded: object = json.loads(raw) if raw else {}
        else:
            decoded = raw.decode("utf-8")
        if raise_for_status and not 200 <= response.status < 300:
            if isinstance(decoded, dict):
                raise GatewayHTTPError(response.status, decoded)
            raise GatewayHTTPError(
                response.status, {"error": "http", "message": str(decoded)}
            )
        return response.status, decoded

    # -- API ---------------------------------------------------------------

    def create_table(
        self,
        name: str,
        attributes: Sequence[Mapping[str, str]],
        columns: Optional[Mapping[str, Sequence]] = None,
    ) -> Dict[str, object]:
        body: Dict[str, object] = {"attributes": list(attributes)}
        if columns is not None:
            body["columns"] = {k: list(v) for k, v in columns.items()}
        _, decoded = self._request("PUT", f"/v1/tables/{name}", body)
        return decoded  # type: ignore[return-value]

    def append(
        self, name: str, columns: Mapping[str, Sequence]
    ) -> Dict[str, object]:
        _, decoded = self._request(
            "POST",
            f"/v1/tables/{name}/append",
            {"columns": {k: list(v) for k, v in columns.items()}},
        )
        return decoded  # type: ignore[return-value]

    def query(
        self, sql: str, timeout_ms: Optional[float] = None
    ) -> Dict[str, object]:
        body: Dict[str, object] = {"sql": sql}
        if timeout_ms is not None:
            body["timeout_ms"] = timeout_ms
        _, decoded = self._request("POST", "/v1/query", body)
        return decoded  # type: ignore[return-value]

    def tables(self) -> List[Dict[str, object]]:
        _, decoded = self._request("GET", "/v1/tables")
        return decoded["tables"]  # type: ignore[index,return-value]

    def checkpoint(self) -> Dict[str, object]:
        _, decoded = self._request("POST", "/v1/checkpoint")
        return decoded  # type: ignore[return-value]

    def healthz(self, raise_for_status: bool = False):
        """(status_code, health payload); 503 is a *valid* answer."""
        return self._request(
            "GET", "/healthz", raise_for_status=raise_for_status
        )

    def metrics(self) -> str:
        _, decoded = self._request("GET", "/metrics")
        return str(decoded)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
