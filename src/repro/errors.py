"""Exception hierarchy for the H2O reproduction.

Every error raised by the library derives from :class:`H2OError` so callers
can catch library failures with a single ``except`` clause while still
distinguishing the failure domain (SQL, storage, execution, codegen, ...).

**Transient vs. permanent.**  The hierarchy also classifies every error
by :attr:`H2OError.is_retryable`, the single signal the service's
retry/backoff decision consumes (see
:meth:`repro.service.H2OService._should_retry`):

- *transient* (``is_retryable = True``) — the failure is a property of
  the moment, not of the query: an aborted reorganization
  (:class:`ReorganizationError`), a timeout (:class:`QueryTimeoutError`),
  admission back-pressure (:class:`ServiceOverloadedError`).  Retrying
  the identical query later can succeed;
- *permanent* (``is_retryable = False``, the default) — the failure is a
  property of the query or the schema (:class:`ParseError`,
  :class:`AnalysisError`, :class:`SchemaError`, …): retrying the same
  bytes can only fail the same way, so the error surfaces immediately.
"""

from __future__ import annotations


class H2OError(Exception):
    """Base class for all errors raised by :mod:`repro`."""

    #: Whether retrying the same operation later can plausibly succeed.
    #: Permanent by default; transient subclasses override this.  The
    #: service's worker requeues retryable failures (bounded attempts +
    #: backoff) instead of forwarding them to the waiter.
    is_retryable: bool = False


class SQLError(H2OError):
    """Base class for query-representation and parsing errors."""


class ParseError(SQLError):
    """Raised when the SQL-subset parser rejects an input string.

    Attributes
    ----------
    message:
        Human readable description of the problem.
    position:
        Character offset in the input at which the error was detected,
        or ``None`` when the position is unknown.
    """

    def __init__(self, message: str, position: "int | None" = None) -> None:
        self.message = message
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class AnalysisError(SQLError):
    """Raised when a syntactically valid query fails semantic analysis.

    Examples: referencing an attribute that is not part of the schema,
    mixing aggregate and non-aggregate output expressions, or applying an
    aggregate to another aggregate.
    """


class StorageError(H2OError):
    """Base class for storage-layer errors (schemas, layouts, catalogs)."""


class SchemaError(StorageError):
    """Raised for malformed schemas: duplicate names, unknown attributes,
    unsupported data types, or empty attribute lists."""


class LayoutError(StorageError):
    """Raised when a layout is built or accessed inconsistently, e.g. a
    column group whose data width does not match its attribute list, or a
    partitioning that does not cover the schema."""


class CatalogError(StorageError):
    """Raised for catalog misuse: duplicate table registration or lookup
    of an unknown table."""


class ReorganizationError(StorageError):
    """Raised when a layout reorganization (stitch) aborts mid-build.

    The contract every caller upholds: an aborted stitch leaves the
    table's published layout set untouched (the partially built group is
    discarded), the triggering candidate stays eligible so the stitch is
    retried later, and — for online reorganization — the triggering
    query is still answered through ordinary cost-based planning.  The
    engine counts these aborts (``H2OEngine.reorg_aborts``) and the
    background scheduler counts them as ``stitch_failures``; the testkit
    oracle asserts the counts match its injected faults, so a silently
    swallowed abort is detected.
    """

    #: Transient: a stitch aborted by a race or an injected fault can
    #: succeed on retry — the candidate stays eligible (under the
    #: engine's exponential-backoff quarantine, see docs/resilience.md).
    is_retryable = True


class ExecutionError(H2OError):
    """Raised when a physical plan cannot be executed, e.g. the available
    layouts do not cover the attributes a query needs."""


class CodegenError(H2OError):
    """Raised when operator generation fails: unknown template, a query
    shape the templates do not support, or generated source that does not
    compile."""


class CostModelError(H2OError):
    """Raised when the cost model is asked to cost an impossible access,
    e.g. a layout that does not contain the requested attributes."""


class AdaptationError(H2OError):
    """Raised by the adaptation mechanism for invalid configuration, e.g.
    a non-positive monitoring window."""


class WorkloadError(H2OError):
    """Raised by workload generators for invalid parameters, e.g. asking
    for more attributes than the schema has."""


class BenchmarkError(H2OError):
    """Raised by the benchmark harness, e.g. for an unknown experiment id."""


class ServiceError(H2OError):
    """Base class for errors raised by the concurrent query service."""


class ServiceOverloadedError(ServiceError):
    """Raised at admission time when the service's bounded queue is full.

    This is graceful back-pressure, not a failure of the store: the
    caller should retry later (or shed load).  The admission controller
    counts the rejection; nothing was executed.
    """

    #: Transient: back-pressure clears as in-flight queries drain.  The
    #: service never auto-retries *submissions* (the bound exists to
    #: shed load), but callers consuming :attr:`is_retryable` should
    #: back off and resubmit.
    is_retryable = True


class QueryTimeoutError(ServiceError):
    """Raised when a submitted query does not finish within its timeout.

    If the query had not started executing, it is cancelled and never
    runs; if it was already running, it completes in the background but
    its result is discarded.
    """

    #: Transient: a timeout is a property of the moment's load, not of
    #: the query.  The service's worker retries a timed-out execution
    #: only while the ticket's own deadline has not passed — a real
    #: deadline expiry still surfaces to the waiter immediately.
    is_retryable = True


class ServiceClosedError(ServiceError):
    """Raised when submitting to a service that has been shut down."""


class WALError(StorageError):
    """Base class for write-ahead-log failures (framing, I/O)."""


class WALCorruptionError(WALError):
    """Raised when a *committed* WAL record fails its CRC check.

    A truncated final record is the expected signature of a crash
    mid-write and is tolerated (the tail is discarded on recovery); a
    corrupt record **followed by further intact records** means the log
    itself is damaged — silently truncating there would drop writes that
    were acknowledged as durable, so recovery fails loudly instead and
    leaves the log untouched for inspection.
    """


class SnapshotError(StorageError):
    """Raised when a persisted snapshot is malformed or unreadable."""


class GatewayError(ServiceError):
    """Base class for errors raised by the network gateway."""


class BadRequestError(GatewayError):
    """Raised for malformed client input: bad JSON, a missing field, an
    invalid table name, or columns that do not match the schema.  Maps
    to HTTP 400; retrying the same bytes can only fail the same way."""


class AuthError(GatewayError):
    """Raised when a request presents an API key that is not in the
    gateway's configured allowlist (``GatewayConfig.api_keys``).  Maps
    to HTTP 401; no tenant state is allocated for the rejected key."""


class TenantQuotaError(GatewayError):
    """Raised at admission when one tenant's in-flight quota is full.

    Per-tenant back-pressure, not a store failure: other tenants are
    unaffected and this tenant should back off and resubmit.  Maps to
    HTTP 429.
    """

    #: Transient: the quota frees as the tenant's in-flight requests
    #: drain.
    is_retryable = True


class ShardError(H2OError):
    """Raised when a shard process fails mid-query: it died, its pipe
    broke, or it missed the scatter timeout.

    The coordinator marks the shard dead and wakes its watchdog before
    raising, so by the time a retry arrives the shard is being respawned
    with its data replayed from the coordinator's retained shared-memory
    segments.  The query itself is untainted — scatter reads are
    snapshot-isolated inside each shard and gather only combines
    complete replies — which is why re-running it is safe.
    """

    #: Transient: the watchdog respawns dead shards (token-bucket
    #: budgeted) and replays their data; the service's retry ladder
    #: requeues the ticket instead of surfacing the death to the waiter.
    is_retryable = True
