"""Command-line entry point: ``python -m repro.bench [ids... | all]``."""

from __future__ import annotations

import argparse
import sys

from .harness import (
    available_experiments,
    get_experiment,
    run_experiment,
    run_experiment_isolated,
)


def _chart_for(result):
    """An ASCII chart for experiments with plottable series, else None."""
    from ..util.chart import line_chart

    numeric = {
        name: values
        for name, values in result.series.items()
        if isinstance(values, (list, tuple))
        and values
        and all(isinstance(v, (int, float)) for v in values)
    }
    if not numeric:
        return None
    return line_chart(
        numeric,
        title=f"{result.experiment_id} (y: seconds, x: sweep index)",
        log_y=True,
    )


def _write_csv(result, path) -> None:
    """One experiment's headers+rows as a plotting-friendly CSV file."""
    import csv

    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(result.headers)
        writer.writerows(result.rows)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description=(
            "Regenerate the tables and figures of 'H2O: A Hands-free "
            "Adaptive Store' (SIGMOD 2014). Scale with H2O_SCALE."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (e.g. fig7 table1), or 'all'",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--record",
        metavar="PATH",
        help="also write a Markdown paper-vs-measured report to PATH",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render experiments with numeric series as ASCII charts",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="write each experiment's rows to DIR/<id>.csv",
    )
    parser.add_argument(
        "--no-isolate",
        action="store_true",
        help=(
            "run multiple experiments in this process instead of one "
            "fresh subprocess each (faster, but heap/page-cache state "
            "leaks between experiments)"
        ),
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        print("Available experiments:")
        for line in available_experiments():
            print("  " + line)
        return 0

    ids = args.experiments
    if ids == ["all"]:
        ids = [line.split(":")[0] for line in available_experiments()]

    for experiment_id in ids:
        get_experiment(experiment_id)  # fail fast on typos
    isolate = len(ids) > 1 and not args.no_isolate
    results = []
    for experiment_id in ids:
        runner = run_experiment_isolated if isolate else run_experiment
        result = runner(experiment_id)
        results.append(result)
        print(result.render())
        if args.chart:
            chart = _chart_for(result)
            if chart:
                print()
                print(chart)
        print()
    if args.csv:
        from pathlib import Path

        directory = Path(args.csv)
        directory.mkdir(parents=True, exist_ok=True)
        for result in results:
            _write_csv(result, directory / f"{result.experiment_id}.csv")
        print(f"wrote {len(results)} csv files to {directory}")
    if args.record:
        from pathlib import Path

        from .report import record

        record(results, Path(args.record))
        print(f"recorded {len(results)} experiments to {args.record}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
