"""Shared measurement plumbing for the figure experiments."""

from __future__ import annotations

import gc
import time
from typing import Callable, List, Sequence, Tuple

from ...config import EngineConfig, scaled_rows
from ...execution.executor import Executor
from ...execution.strategies import AccessPlan, ExecutionStrategy
from ...sql.analyzer import QueryInfo, analyze_query
from ...sql.query import Query
from ...storage.column_group import ColumnGroup
from ...storage.relation import Table
from ...storage.stitcher import stitch_group
from ..harness import warm_table


def run_engine_on_sequence(
    make_engine: Callable[[Table], object],
    make_table: Callable[[], Table],
    queries: Sequence[Query],
    rounds: int = 1,
) -> Tuple[List[float], object]:
    """Fresh table → warm → run the sequence; per-query seconds.

    Engines are measured one at a time on their own warmed copy of the
    data, so comparisons are free of page-fault and cache-pollution
    ordering bias.  With ``rounds > 1`` the whole sequence is repeated
    on a fresh engine each time and the fastest round is kept — shared
    machines introduce tens of percent of run-to-run noise.
    """
    best_seconds: List[float] = []
    best_engine = None
    for _ in range(max(1, rounds)):
        gc.collect()
        table = make_table()
        warm_table(table)
        engine = make_engine(table)
        seconds = [engine.execute(q).seconds for q in queries]
        if best_engine is None or sum(seconds) < sum(best_seconds):
            best_seconds = seconds
            best_engine = engine
    return best_seconds, best_engine


def perfect_group(table: Table, attrs: Sequence[str]) -> ColumnGroup:
    """A tailored column group over ``attrs`` (built untimed)."""
    ordered = table.schema.ordered(attrs)
    group, _stats = stitch_group(
        table.covering_layouts(ordered),
        ordered,
        table.schema,
        full_width=len(ordered) == table.schema.width,
    )
    return group


def time_plan(
    executor: Executor,
    info: QueryInfo,
    plan: AccessPlan,
    repeats: int = 3,
) -> float:
    """Median-of-``repeats`` execution seconds for one warmed plan.

    The first (codegen-paying) run is excluded — layout micro-figures
    (Fig. 10–12) study steady-state access-path behaviour; codegen cost
    is studied separately in Fig. 14.
    """
    executor.run_plan(info, plan)  # warm the operator cache
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        executor.run_plan(info, plan)
        times.append(time.perf_counter() - started)
    times.sort()
    return times[len(times) // 2]


def layout_plans_for(
    table: Table,
    row_layout,
    group,
    info: QueryInfo,
) -> dict:
    """The three per-layout plans of Fig. 10: row, group, column."""
    singles = table.narrowest_cover(info.all_attrs)
    return {
        "row": AccessPlan(ExecutionStrategy.FUSED, (row_layout,)),
        "group": AccessPlan(ExecutionStrategy.FUSED, (group,)),
        "column": AccessPlan(ExecutionStrategy.LATE, tuple(singles)),
    }


def analyze(query: Query, table: Table) -> QueryInfo:
    return analyze_query(query, table.schema)


def default_config() -> EngineConfig:
    return EngineConfig()


def rows(base: int) -> int:
    """Scaled row count for experiments (H2O_SCALE)."""
    return scaled_rows(base)
