"""Fig. 8 — H2O vs AutoPart on the SkyServer surrogate workload.

AutoPart gets the entire 250-query workload up front, computes an
offline vertical partitioning, physically applies it (timed as "layout
creation"), then executes.  H2O sees the queries online, adapting as it
goes.  The paper's result: H2O's total (execution + creation) beats the
offline tool because it adapts to individual queries rather than one
compromise partitioning.
"""

from __future__ import annotations

from ...baselines import AutoPartEngine
from ...core.engine import H2OEngine
from ...workloads.skyserver import skyserver_workload
from ..harness import ExperimentResult, register, warm_table
from .common import rows


@register("fig8", "H2O vs AutoPart on the SkyServer surrogate (250 queries)")
def fig8() -> ExperimentResult:
    # The paper's SkyServer subset is orders of magnitude larger than
    # our default micro-benchmark scale; per-query work must dominate
    # the (Python-fixed) adaptation overheads as it does in the paper,
    # so this experiment uses a larger default table.
    workload = skyserver_workload(
        num_rows=rows(250_000), num_queries=250, rng=13
    )

    # AutoPart: offline fit + physical application (timed), then run.
    table_a = workload.make_table(rng=2)
    warm_table(table_a)
    autopart = AutoPartEngine(table_a, workload.queries)
    autopart.prepare()
    autopart_exec = sum(
        autopart.execute(q).seconds for q in workload.queries
    )

    # H2O: fully online, starting from the same row-major relation.
    table_h = workload.make_table(rng=2)
    warm_table(table_h)
    h2o = H2OEngine(table_h)
    h2o_reports = [h2o.execute(q) for q in workload.queries]
    h2o_total = sum(r.seconds for r in h2o_reports)
    h2o_creation = h2o.layout_creation_seconds()
    h2o_exec = h2o_total - h2o_creation

    result = ExperimentResult(
        experiment_id="fig8",
        title="execution vs layout-creation time (stacked bars)",
        headers=["engine", "execution (s)", "layout creation (s)",
                 "total (s)"],
        series={
            "autopart": (autopart_exec, autopart.layout_creation_seconds),
            "h2o": (h2o_exec, h2o_creation),
        },
    )
    result.rows.append(
        [
            "AutoPart",
            round(autopart_exec, 3),
            round(autopart.layout_creation_seconds, 3),
            round(autopart_exec + autopart.layout_creation_seconds, 3),
        ]
    )
    result.rows.append(
        ["H2O", round(h2o_exec, 3), round(h2o_creation, 3),
         round(h2o_total, 3)]
    )
    result.notes.append(
        f"AutoPart partitioned into "
        f"{len(autopart.partitioning.groups)} fragments; H2O built "
        f"{len(h2o.manager.creation_log)} groups online"
    )
    autopart_total = autopart_exec + autopart.layout_creation_seconds
    result.notes.append(
        "creation-share claim (H2O creates far less than the offline "
        "tool): "
        + (
            "HOLDS"
            if h2o_creation < autopart.layout_creation_seconds
            else "VIOLATED"
        )
    )
    result.notes.append(
        f"total-time claim (paper: H2O < AutoPart): H2O at "
        f"{h2o_total / autopart_total:.2f}x AutoPart — "
        + ("HOLDS" if h2o_total <= autopart_total else "NOT REPRODUCED")
    )
    result.notes.append(
        "the total-time margin is substrate-sensitive: the offline "
        "tool's fixed costs (disk-resident repartitioning in the "
        "paper) are disproportionately cheap as an in-memory numpy "
        "stitch, while H2O's per-query monitoring/advisor costs are "
        "disproportionately expensive in Python at this scale; H2O's "
        "execution reaches the offline tool's without any workload "
        "knowledge, which is the figure's qualitative point"
    )
    return result
