"""Fig. 7 + Table 1 — H2O vs row-store vs column-store vs optimal.

A 100-query select-project-aggregate sequence with recurring, drifting
access patterns.  H2O starts at column-store behaviour (the relation is
initially column-major), pays visible reorganization spikes on the
queries that materialize new column groups, then tracks near-optimal.

Table 1 is the cumulative execution time of the same sequence; the
expected ordering is optimal < H2O < column < row.
"""

from __future__ import annotations

from typing import Dict, List

from ...baselines import ColumnStoreEngine, OptimalEngine, RowStoreEngine
from ...core.engine import H2OEngine
from ...workloads.sequences import fig7_sequence
from ..harness import ExperimentResult, register
from .common import rows, run_engine_on_sequence


def run_fig7(num_queries: int = 100, base_rows: int = 150_000, seed: int = 7):
    """Run the four engines over the Fig. 7 sequence; per-query times."""
    workload = fig7_sequence(
        num_attrs=150,
        num_rows=rows(base_rows),
        num_queries=num_queries,
        rng=seed,
    )

    factories = (
        ("row", RowStoreEngine),
        ("column", ColumnStoreEngine),
        ("optimal", OptimalEngine),
        ("h2o", H2OEngine),
    )
    results: Dict[str, List[float]] = {}
    engines = {}
    # Rounds are interleaved across engines (A B C D, A B C D) so that
    # slow machine phases hit every engine, not whichever engine was
    # running when the host slowed down; per engine the best round wins.
    for _round in range(2):
        for name, factory in factories:
            seconds, engine = run_engine_on_sequence(
                factory,
                lambda: workload.make_table(rng=1),
                workload.queries,
            )
            if name not in results or sum(seconds) < sum(results[name]):
                results[name] = seconds
                engines[name] = engine
    return workload, results, engines


@register("fig7", "per-query response time: H2O vs row vs column vs optimal")
def fig7() -> ExperimentResult:
    workload, results, engines = run_fig7()
    h2o = engines["h2o"]
    result = ExperimentResult(
        experiment_id="fig7",
        title="H2O adapts along the query sequence",
        headers=["query", "row (s)", "column (s)", "optimal (s)",
                 "H2O (s)", "H2O event"],
        series=results,
    )
    reorg_queries = {
        event.query_index for event in h2o.manager.creation_log
    }
    for index in range(len(workload.queries)):
        event = ""
        report = h2o.reports[index]
        if index in reorg_queries:
            event = "builds layout"
        elif report.strategy == "fused":
            event = "fused group"
        result.rows.append(
            [
                index,
                round(results["row"][index], 4),
                round(results["column"][index], 4),
                round(results["optimal"][index], 4),
                round(results["h2o"][index], 4),
                event,
            ]
        )
    result.notes.append(
        f"H2O created {len(h2o.manager.creation_log)} column groups "
        f"({h2o.layout_creation_seconds():.2f}s total, charged to the "
        "triggering queries)"
    )
    fused = sum(1 for r in h2o.reports if r.strategy == "fused")
    result.notes.append(
        f"{fused}/{len(h2o.reports)} queries ran on column groups; the "
        "rest used column-major late materialization"
    )
    return result


@register("table1", "cumulative execution time of the Fig. 7 sequence")
def table1() -> ExperimentResult:
    _workload, results, engines = run_fig7()
    result = ExperimentResult(
        experiment_id="table1",
        title="cumulative execution time (paper: 538.2 / 283.7 / 204.7)",
        headers=["engine", "cumulative (s)", "vs column"],
        series={name: sum(vals) for name, vals in results.items()},
    )
    column_total = sum(results["column"])
    for name in ("row", "column", "h2o", "optimal"):
        total = sum(results[name])
        result.rows.append(
            [name, round(total, 3), f"{total / column_total:.2f}x"]
        )
    expected = (
        sum(results["optimal"])
        <= sum(results["h2o"])
        <= sum(results["column"])
        <= sum(results["row"])
    )
    result.notes.append(
        "expected ordering optimal <= H2O <= column <= row: "
        + ("HOLDS" if expected else "VIOLATED")
    )
    return result
