"""Fig. 13 — online vs offline data reorganization.

Two new column groups (10 and 25 attributes) are created from a
100-attribute relation while answering aggregation queries (10 and 20
aggregations, no WHERE).  Offline = build the layout, then execute the
query as two separate passes; online = H2O's fused operator that
stitches the new layout and evaluates the query in one pass over
cache-hot blocks.

Q1/Q2 start from a row-major relation, Q3/Q4 from a column-major one.
Expected: online wins all four cases, with a larger margin from
row-major sources (paper: 38–61% vs 22–37%).
"""

from __future__ import annotations

from ...core.reorganizer import Reorganizer
from ...execution.executor import Executor
from ...execution.strategies import AccessPlan, ExecutionStrategy
from ...storage.generator import generate_table
from ...util.timing import Timer
from ...workloads.microbench import aggregation_query
from ..harness import ExperimentResult, register, warm_table
from .common import analyze, default_config, rows

CASES = (
    # (label, initial layout, group width, number of aggregations)
    ("Q1", "row", 10, 10),
    ("Q2", "row", 25, 20),
    ("Q3", "column", 10, 10),
    ("Q4", "column", 25, 20),
)


@register("fig13", "online vs offline reorganization (Q1-Q4)")
def fig13() -> ExperimentResult:
    num_rows = rows(100_000)
    result = ExperimentResult(
        experiment_id="fig13",
        title="create a group + answer the query: two passes vs one",
        headers=["case", "initial", "offline (s)", "online (s)",
                 "improvement"],
    )
    reorganizer = Reorganizer(default_config())
    executor = Executor(default_config())
    for label, initial, width, num_aggs in CASES:
        table = generate_table(
            "r", 100, num_rows, rng=41, initial_layout=initial
        )
        warm_table(table)
        attrs = [f"a{i}" for i in range(1, width + 1)]
        query = aggregation_query(attrs[:num_aggs], func="sum")
        info = analyze(query, table)

        # Offline: dedicated stitching pass, then execute over the group.
        with Timer() as offline_timer:
            outcome = reorganizer.offline(table, attrs)
            plan = AccessPlan(ExecutionStrategy.FUSED, (outcome.group,))
            result_offline, _stats = executor.run_plan(info, plan)

        # Online: one fused pass builds the group and answers the query.
        table2 = generate_table(
            "r", 100, num_rows, rng=41, initial_layout=initial
        )
        warm_table(table2)
        with Timer() as online_timer:
            outcome2 = reorganizer.online(table2, attrs, info)

        assert result_offline.allclose(outcome2.result)
        improvement = (
            (offline_timer.elapsed - online_timer.elapsed)
            / offline_timer.elapsed
            * 100.0
        )
        result.rows.append(
            [
                label,
                initial,
                round(offline_timer.elapsed, 4),
                round(online_timer.elapsed, 4),
                f"{improvement:.0f}%",
            ]
        )
    result.notes.append(
        "improvement = how much faster the fused (online) operator "
        "finishes both tasks"
    )
    result.series["cases"] = result.rows
    return result
