"""Ablations of H2O's design choices (DESIGN.md section 5).

Not figures from the paper — these isolate the contribution of each
mechanism on the Fig. 7 workload:

- ``operator cache`` off → every query pays code generation again,
- ``codegen`` off → the generic interpreted operators run instead,
- ``lazy materialization`` off → the engine never builds candidate
  layouts (pure strategy adaptation),
- ``dynamic window`` off → Fig. 9's static-window behaviour.
"""

from __future__ import annotations

from typing import Dict

from ...config import EngineConfig
from ...core.engine import H2OEngine
from ...workloads.sequences import fig7_sequence
from ..harness import ExperimentResult, register
from .common import rows, run_engine_on_sequence

VARIANTS: Dict[str, dict] = {
    "full H2O": {},
    "no operator cache": {"operator_cache": False},
    "no codegen (generic ops)": {"use_codegen": False},
    "eager materialization": {"materialization": "eager"},
    "no materialization": {"materialization": "never"},
    "static window": {"dynamic_window": False},
}


@register("ablation", "H2O design-choice ablations on the Fig. 7 workload")
def ablation() -> ExperimentResult:
    workload = fig7_sequence(
        num_attrs=150, num_rows=rows(100_000), num_queries=60, rng=7
    )
    result = ExperimentResult(
        experiment_id="ablation",
        title="cumulative seconds per disabled mechanism",
        headers=["variant", "cumulative (s)", "layouts built",
                 "vs full H2O"],
    )
    baseline = None
    for label, overrides in VARIANTS.items():
        config = EngineConfig(**overrides)

        def make_engine(table, _config=config):
            return H2OEngine(table, _config)

        seconds, engine = run_engine_on_sequence(
            make_engine, lambda: workload.make_table(rng=1),
            workload.queries,
        )
        total = sum(seconds)
        if baseline is None:
            baseline = total
        result.rows.append(
            [
                label,
                round(total, 3),
                len(engine.manager.creation_log),
                f"{total / baseline:.2f}x",
            ]
        )
        result.series[label] = total
    result.notes.append(
        "each variant runs the same 60-query sequence on its own warmed "
        "table copy"
    )
    return result
