"""Window-size sensitivity (paper section 3.2: "the window size defines
how aggressive or conservative H2O is").

Not a numbered figure — the paper discusses the trade-off and sets the
initial window to 20 (section 4.1); this experiment sweeps the initial
window on the Fig. 7 workload to show both failure modes: tiny windows
adapt constantly (overhead, overreaction), huge windows adapt too late
(missed layouts).
"""

from __future__ import annotations

from ...config import EngineConfig
from ...core.engine import H2OEngine
from ...workloads.sequences import fig7_sequence
from ..harness import ExperimentResult, register
from .common import rows, run_engine_on_sequence

WINDOW_SIZES = (5, 10, 20, 40)


@register(
    "window_sense",
    "sensitivity of H2O to the initial adaptation-window size",
)
def window_sense() -> ExperimentResult:
    workload = fig7_sequence(
        num_attrs=150, num_rows=rows(100_000), num_queries=80, rng=7
    )
    result = ExperimentResult(
        experiment_id="window_sense",
        title="initial window size vs cumulative time (Fig. 7 workload)",
        headers=[
            "window",
            "cumulative (s)",
            "layouts built",
            "adaptations",
            "fused queries",
        ],
    )
    for window in WINDOW_SIZES:
        config = EngineConfig(
            window_size=window,
            min_window=min(8, window),
            max_window=max(60, window),
        )

        def make_engine(table, _config=config):
            return H2OEngine(table, _config)

        seconds, engine = run_engine_on_sequence(
            make_engine, lambda: workload.make_table(rng=1),
            workload.queries,
        )
        adaptations = sum(1 for r in engine.reports if r.adaptation_ran)
        fused = sum(1 for r in engine.reports if r.strategy == "fused")
        result.rows.append(
            [
                window,
                round(sum(seconds), 3),
                len(engine.manager.creation_log),
                adaptations,
                fused,
            ]
        )
        result.series[str(window)] = sum(seconds)
    result.notes.append(
        "the paper's default (20) balances adaptation overhead against "
        "reaction speed"
    )
    return result
