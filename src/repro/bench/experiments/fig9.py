"""Fig. 9 — static vs dynamic adaptation window.

A 60-query arithmetic-expression sequence over a row-major relation
shifts its 20-attribute focus set after query 15.  The dynamic window
detects the shift, shrinks, and re-adapts early (paper: around query
25); the static window must wait for its full 30-query period, serving
the new focus set suboptimally in the meantime.
"""

from __future__ import annotations

from ...config import EngineConfig
from ...core.engine import H2OEngine
from ...workloads.sequences import fig9_sequence
from ..harness import ExperimentResult, register
from .common import rows, run_engine_on_sequence

WINDOW = 30


@register("fig9", "static vs dynamic adaptation window under a shift")
def fig9() -> ExperimentResult:
    workload = fig9_sequence(
        num_attrs=150, num_rows=rows(100_000), rng=5
    )

    def static_engine(table):
        return H2OEngine(
            table,
            EngineConfig(
                window_size=WINDOW,
                min_window=WINDOW,
                max_window=WINDOW,
                dynamic_window=False,
            ),
        )

    def dynamic_engine(table):
        return H2OEngine(
            table,
            EngineConfig(window_size=WINDOW, min_window=8, max_window=60),
        )

    static_seconds, static_eng = run_engine_on_sequence(
        static_engine, lambda: workload.make_table(rng=3), workload.queries
    )
    dynamic_seconds, dynamic_eng = run_engine_on_sequence(
        dynamic_engine, lambda: workload.make_table(rng=3), workload.queries
    )

    result = ExperimentResult(
        experiment_id="fig9",
        title="execution time per query, shift after query 15",
        headers=["query", "static (s)", "dynamic (s)", "dynamic event"],
        series={"static": static_seconds, "dynamic": dynamic_seconds},
    )
    dyn_reorgs = {
        e.query_index for e in dynamic_eng.manager.creation_log
    }
    for index in range(len(workload.queries)):
        report = dynamic_eng.reports[index]
        event = []
        if report.shift_detected:
            event.append("shift!")
        if index in dyn_reorgs:
            event.append("builds layout")
        result.rows.append(
            [
                index,
                round(static_seconds[index], 4),
                round(dynamic_seconds[index], 4),
                " ".join(event),
            ]
        )
    first_static = min(
        (e.query_index for e in static_eng.manager.creation_log
         if e.query_index is not None and e.query_index >= 15),
        default=None,
    )
    first_dynamic = min(
        (e.query_index for e in dynamic_eng.manager.creation_log
         if e.query_index is not None and e.query_index >= 15),
        default=None,
    )
    result.notes.append(
        f"first post-shift layout: dynamic at query {first_dynamic}, "
        f"static at query {first_static}"
    )
    result.notes.append(
        f"cumulative: static {sum(static_seconds):.2f}s, dynamic "
        f"{sum(dynamic_seconds):.2f}s (dynamic window shrank "
        f"{dynamic_eng.window.shrink_events}x)"
    )
    result.series["first_adaptation"] = (first_dynamic, first_static)
    return result
