"""Fig. 10(a–f) — behaviour of the three data layouts.

One wide table (150 attributes); queries run over each layout with its
natural strategy and tailored generated code:

- row-major       → fused scan of the full-width layout,
- group of columns → fused scan of a group containing exactly the
  accessed attributes (creation cost excluded, as in the paper),
- column-major    → late materialization over single columns.

(a–c) sweep the number of attributes accessed (no WHERE clause) for
projections / aggregations / arithmetic expressions; (d–f) fix 20
attributes and sweep selectivity 0.1%–100% with one predicate attribute.

Expected shapes: groups win projections and arithmetic expressions;
column-major wins plain aggregations; row-major converges to the group
at full width and loses badly at low attribute counts.
"""

from __future__ import annotations

from typing import List, Sequence

from ...execution.executor import Executor
from ...storage.generator import generate_table
from ...storage.stitcher import stitch_group
from ...workloads.microbench import QUERY_TEMPLATES
from ..harness import ExperimentResult, register, warm_table
from .common import analyze, default_config, layout_plans_for, rows, time_plan

NUM_ATTRS = 150
ATTR_SWEEP = (5, 15, 25, 35, 45, 55, 65, 75, 85, 95, 105, 115, 125, 135, 145)
SELECTIVITIES = (0.001, 0.01, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0)


def _build_tables(seed: int = 21):
    """Column-major table + its row-major twin (shared data)."""
    num_rows = rows(100_000)
    table = generate_table(
        "r", NUM_ATTRS, num_rows, rng=seed, initial_layout="column"
    )
    row_layout, _ = stitch_group(
        table.layouts, table.schema.names, table.schema, full_width=True
    )
    table.add_layout(row_layout)
    warm_table(table)
    return table, row_layout


def _run_layout_points(
    table,
    row_layout,
    queries: Sequence,
    labels: Sequence[object],
) -> List[Sequence[object]]:
    executor = Executor(default_config())
    out = []
    for label, query in zip(labels, queries):
        info = analyze(query, table)
        group = stitch_group(
            table.covering_layouts(info.all_attrs),
            table.schema.ordered(info.all_attrs),
            table.schema,
        )[0]
        plans = layout_plans_for(table, row_layout, group, info)
        times = {
            name: time_plan(executor, info, plan)
            for name, plan in plans.items()
        }
        out.append(
            [
                label,
                round(times["row"], 4),
                round(times["group"], 4),
                round(times["column"], 4),
                min(times, key=times.get),
            ]
        )
    return out


def _pick(count: int, rng) -> list:
    """Randomly scattered attributes (paper: "randomly generated")."""
    chosen = rng.choice(NUM_ATTRS, size=count, replace=False)
    return [f"a{i + 1}" for i in sorted(chosen)]


def _attr_sweep_experiment(
    experiment_id: str, template: str, title: str
) -> ExperimentResult:
    import numpy as np

    table, row_layout = _build_tables()
    make = QUERY_TEMPLATES[template]
    counts = [c for c in ATTR_SWEEP if c <= NUM_ATTRS]
    rng = np.random.default_rng(97)
    queries = [make(_pick(count, rng)) for count in counts]
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=["# attrs", "row (s)", "group (s)", "column (s)", "best"],
    )
    result.rows = _run_layout_points(table, row_layout, queries, counts)
    result.series["points"] = result.rows
    return result


def _selectivity_sweep_experiment(
    experiment_id: str, template: str, title: str, attrs_accessed: int = 20
) -> ExperimentResult:
    import numpy as np

    table, row_layout = _build_tables()
    make = QUERY_TEMPLATES[template]
    picked = _pick(attrs_accessed, np.random.default_rng(98))
    attrs, where_attr = picked[:-1], picked[-1]
    queries = [
        make(attrs, where_attrs=[where_attr], selectivity=s)
        for s in SELECTIVITIES
    ]
    labels = [f"{s * 100:g}%" for s in SELECTIVITIES]
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=["selectivity", "row (s)", "group (s)", "column (s)", "best"],
    )
    result.rows = _run_layout_points(table, row_layout, queries, labels)
    result.series["points"] = result.rows
    return result


@register("fig10a", "layouts: projections, attribute sweep, no WHERE")
def fig10a() -> ExperimentResult:
    return _attr_sweep_experiment(
        "fig10a", "projection", "projections vs attributes projected"
    )


@register("fig10b", "layouts: aggregations, attribute sweep, no WHERE")
def fig10b() -> ExperimentResult:
    return _attr_sweep_experiment(
        "fig10b", "aggregation", "aggregations vs attributes aggregated"
    )


@register("fig10c", "layouts: arithmetic expressions, attribute sweep")
def fig10c() -> ExperimentResult:
    return _attr_sweep_experiment(
        "fig10c", "arithmetic", "arithmetic expression vs attributes accessed"
    )


@register("fig10d", "layouts: projections at 20 attrs, selectivity sweep")
def fig10d() -> ExperimentResult:
    return _selectivity_sweep_experiment(
        "fig10d", "projection", "projection of 20 attrs vs selectivity"
    )


@register("fig10e", "layouts: aggregations at 20 attrs, selectivity sweep")
def fig10e() -> ExperimentResult:
    return _selectivity_sweep_experiment(
        "fig10e", "aggregation", "20 aggregations vs selectivity"
    )


@register("fig10f", "layouts: arithmetic at 20 attrs, selectivity sweep")
def fig10f() -> ExperimentResult:
    return _selectivity_sweep_experiment(
        "fig10f", "arithmetic", "arithmetic over 20 attrs vs selectivity"
    )
