"""Per-figure experiment drivers; importing this package registers all
experiments with the harness registry."""

from . import (  # noqa: F401
    fig1,
    fig2,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    ablations,
    sensitivity,
    throughput,
)
