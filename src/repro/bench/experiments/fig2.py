"""Fig. 2(a–c) — the "optimal DBMS" changes with the workload.

Same setup as Fig. 1, at three selectivities: (a) 100% (pure
aggregation, no WHERE clause), (b) 40%, (c) 1%.  Expected shapes:
(a) column always wins; (b)/(c) a crossover appears as the number of
attributes accessed in both clauses grows.
"""

from __future__ import annotations

from ..harness import ExperimentResult, register
from .fig1 import run_projectivity_experiment


@register("fig2a", "projectivity sweep, selectivity 100% (no WHERE)")
def fig2a() -> ExperimentResult:
    return run_projectivity_experiment(
        "fig2a", "aggregations only (no WHERE clause)", selectivity=None
    )


@register("fig2b", "projectivity sweep, selectivity 40%")
def fig2b() -> ExperimentResult:
    return run_projectivity_experiment(
        "fig2b", "select-project-aggregate at selectivity 40%",
        selectivity=0.4,
    )


@register("fig2c", "projectivity sweep, selectivity 1%")
def fig2c() -> ExperimentResult:
    return run_projectivity_experiment(
        "fig2c", "select-project-aggregate at selectivity 1%",
        selectivity=0.01,
    )
