"""Fig. 1 — DBMS-C vs DBMS-R, select-project-aggregate, selectivity 40%.

The paper's motivating experiment: a 250-attribute relation; queries
aggregate a growing fraction of the attributes and filter on the same
attributes with total selectivity held at 40%.  The column engine must
win at low projectivity and the row engine past a crossover.

DBMS-C / DBMS-R are commercial systems we substitute with our own
column-store / row-store engines (DESIGN.md); the paper itself makes the
same substitution for all later experiments.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ...baselines import ColumnStoreEngine, RowStoreEngine
from ...storage.generator import generate_table
from ...workloads.microbench import projectivity_sweep
from ..harness import ExperimentResult, register
from .common import rows, run_engine_on_sequence

#: Attribute-fraction sweep used by Figs. 1 and 2 (paper: 2%..100%).
FRACTIONS = (0.02, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def run_projectivity_experiment(
    experiment_id: str,
    title: str,
    selectivity: Optional[float],
    num_attrs: int = 250,
    base_rows: int = 60_000,
    template: str = "aggregation",
    fractions: Sequence[float] = FRACTIONS,
    seed: int = 11,
) -> ExperimentResult:
    """Shared driver for Fig. 1 and Fig. 2(a–c)."""
    num_rows = rows(base_rows)
    queries = projectivity_sweep(
        num_attrs,
        fractions,
        template=template,
        selectivity=selectivity,
        rng=seed,
    )

    def make_table():
        return generate_table(
            "r", num_attrs, num_rows, rng=1, initial_layout="column"
        )

    col_seconds, _ = run_engine_on_sequence(
        ColumnStoreEngine, make_table, queries
    )
    row_seconds, _ = run_engine_on_sequence(
        RowStoreEngine, make_table, queries
    )

    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=["attrs %", "DBMS-C (s)", "DBMS-R (s)", "winner"],
        series={"fractions": list(fractions), "column": col_seconds,
                "row": row_seconds},
    )
    crossover = None
    for fraction, c, r in zip(fractions, col_seconds, row_seconds):
        winner = "column" if c <= r else "row"
        if winner == "row" and crossover is None:
            crossover = fraction
        result.rows.append(
            [f"{fraction * 100:.0f}", round(c, 4), round(r, 4), winner]
        )
    result.notes.append(
        f"{num_rows} rows x {num_attrs} attrs; selectivity="
        + ("none (no WHERE)" if selectivity is None else f"{selectivity}")
    )
    if crossover is not None:
        result.notes.append(
            f"first row-store win at {crossover * 100:.0f}% of attributes"
        )
    else:
        result.notes.append("column store won the whole sweep")
    return result


@register("fig1", "DBMS-C vs DBMS-R, projectivity sweep at 40% selectivity")
def fig1() -> ExperimentResult:
    return run_projectivity_experiment(
        "fig1",
        "inability of a fixed layout to stay optimal (sel 40%)",
        selectivity=0.4,
    )
