"""Fig. 14 — generic operator vs generated code.

Q1 (20 aggregations) and Q2 (a 20-attribute arithmetic expression) run
over the row-major layout and over a tailored 20-attribute group, once
through the generic tree-walking operators and once through on-the-fly
generated code.  Generation + compilation time is *included* in the
generated-code time, as in the paper (their 63–84 ms of C++ compilation;
our Python compilation is cheaper but equally charged).

Expected: generated code wins everywhere (paper: 16% up to 1.7×) by
removing per-vector interpretation overhead and fusing the arithmetic
pipeline.
"""

from __future__ import annotations

from ...config import EngineConfig
from ...execution.executor import Executor
from ...execution.strategies import AccessPlan, ExecutionStrategy
from ...storage.generator import generate_table
from ...storage.stitcher import stitch_group
from ...util.timing import Timer
from ...workloads.microbench import aggregation_query, arithmetic_query
from ..harness import ExperimentResult, register, warm_table
from .common import analyze, rows

NUM_ATTRS = 150
ACCESSED = 20


@register("fig14", "generic (interpreted) operator vs generated code")
def fig14() -> ExperimentResult:
    table = generate_table(
        "r", NUM_ATTRS, rows(100_000), rng=51, initial_layout="column"
    )
    row_layout, _ = stitch_group(
        table.layouts, table.schema.names, table.schema, full_width=True
    )
    table.add_layout(row_layout)
    attrs = [f"a{i}" for i in range(1, ACCESSED + 1)]
    group, _ = stitch_group(
        table.covering_layouts(attrs), attrs, table.schema
    )
    warm_table(table)

    generic = Executor(EngineConfig(use_codegen=False))
    generated = Executor(EngineConfig(use_codegen=True,
                                      operator_cache=False))

    # Section 4.2.1 templates ii and iii with a filter: the filtered
    # path is where generic operators pay the most interpretation
    # overhead (per-vector dispatch + per-column compaction).
    queries = {
        "Q1 (aggregations)": aggregation_query(
            attrs[:-1], where_attrs=[attrs[-1]], selectivity=0.4,
            func="max",
        ),
        "Q2 (arithmetic expr)": arithmetic_query(
            attrs[:-1], where_attrs=[attrs[-1]], selectivity=0.4
        ),
    }
    layouts = {"row": (row_layout,), "group of columns": (group,)}

    result = ExperimentResult(
        experiment_id="fig14",
        title="per-query time incl. code generation",
        headers=["query", "layout", "generic (s)", "generated (s)",
                 "speedup"],
    )
    for qlabel, query in queries.items():
        info = analyze(query, table)
        for llabel, layout_tuple in layouts.items():
            plan = AccessPlan(ExecutionStrategy.FUSED, layout_tuple)
            with Timer() as generic_timer:
                generic.run_plan(info, plan)
            with Timer() as generated_timer:
                # Cache disabled: generation+compilation paid every time.
                generated.run_plan(info, plan)
            result.rows.append(
                [
                    qlabel,
                    llabel,
                    round(generic_timer.elapsed, 4),
                    round(generated_timer.elapsed, 4),
                    f"{generic_timer.elapsed / generated_timer.elapsed:.2f}x",
                ]
            )
    result.notes.append(
        "generated-code times include template instantiation and "
        "compilation (operator cache disabled)"
    )
    result.series["rows"] = result.rows
    return result
