"""Fig. 11 — accessing only a subset of a column group.

A 30-attribute group exists; queries aggregate 5/10/15/20/25 of its
attributes (with a filter on one of them) at selectivities 1/10/50/100%.
Reported value: the percentage slowdown of using the whole 30-attribute
group versus a perfect group containing exactly the needed attributes.

Expected shape: the penalty grows as fewer of the group's attributes are
useful (paper: up to ~142% at 5-of-30) and is negligible at 25-of-30.
"""

from __future__ import annotations

from ...execution.executor import Executor
from ...execution.strategies import AccessPlan, ExecutionStrategy
from ...storage.generator import generate_table
from ...workloads.microbench import aggregation_query
from ..harness import ExperimentResult, register, warm_table
from .common import analyze, default_config, perfect_group, rows, time_plan

GROUP_WIDTH = 30
USEFUL_COUNTS = (5, 10, 15, 20, 25)
SELECTIVITIES = (0.01, 0.1, 0.5, 1.0)


@register("fig11", "penalty of accessing a subset of a 30-attr column group")
def fig11() -> ExperimentResult:
    table = generate_table(
        "r", 60, rows(100_000), rng=31, initial_layout="column"
    )
    group_attrs = [f"a{i}" for i in range(1, GROUP_WIDTH + 1)]
    group = perfect_group(table, group_attrs)
    warm_table(table)
    executor = Executor(default_config())

    result = ExperimentResult(
        experiment_id="fig11",
        title="slowdown vs a perfectly tailored group (percent)",
        headers=["selectivity"] + [f"{c} attrs" for c in USEFUL_COUNTS],
    )
    for selectivity in SELECTIVITIES:
        row = [f"{selectivity * 100:g}%"]
        for useful in USEFUL_COUNTS:
            attrs = group_attrs[: useful - 1]
            where_attr = group_attrs[useful - 1]
            query = aggregation_query(
                attrs, where_attrs=[where_attr], selectivity=selectivity
            )
            info = analyze(query, table)
            tailored = perfect_group(table, info.all_attrs)
            whole = time_plan(
                executor,
                info,
                AccessPlan(ExecutionStrategy.FUSED, (group,)),
                repeats=9,
            )
            perfect = time_plan(
                executor,
                info,
                AccessPlan(ExecutionStrategy.FUSED, (tailored,)),
                repeats=9,
            )
            penalty = (whole / perfect - 1.0) * 100.0
            row.append(round(penalty, 1))
        result.rows.append(row)
    result.notes.append(
        "cells are % slowdown of the 30-attribute group vs a group with "
        "exactly the accessed attributes (higher = worse)"
    )
    result.series["penalties"] = result.rows
    return result
