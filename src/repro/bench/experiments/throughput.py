"""Steady-state throughput: the plan-cache fast lane on vs off.

The paper's adaptation story (Fig. 7) ends in a steady state: the store
has converged on a layout set and the workload keeps repeating the same
query shapes with fresh constants.  From then on H2O's remaining
per-query overhead is pure *re-derivation* — analysis, plan
enumeration, Eq. 2 costing, operator-cache key construction — and the
engine's signature-keyed plan cache exists to eliminate exactly that.

This experiment measures post-adaptation throughput (queries/second)
of the very same engine with the fast lane enabled and disabled.  The
query stream is pre-parsed (prepared-statement style), so both
configurations pay identical frontend cost and the ratio isolates the
engine's decision overhead.  Following the repo's measurement idiom
(see fig7), each configuration keeps its best trial — on shared
machines noise only ever slows a run down.
"""

from __future__ import annotations

import gc
import random
import time
from typing import Dict, List, Tuple

from ...config import EngineConfig
from ...core.engine import H2OEngine
from ...sql.parser import parse_query
from ...sql.query import Query
from ...storage.generator import generate_table
from ..harness import ExperimentResult, register, warm_table
from .common import rows

#: Recurring query shapes (literals vary per instance).  Sized so the
#: cold path exercises real planning: multi-attribute covers, mixed
#: aggregations/projections, one- and two-conjunct predicates.
SHAPES: Tuple[str, ...] = (
    "SELECT sum(a1 + a2), max(a3), min(a4) FROM r WHERE a5 > {v} AND a6 < {w}",
    "SELECT a1, a2, a7, a8 FROM r WHERE a9 > {v}",
    "SELECT min(a10), count(*), sum(a2 * a3) FROM r WHERE a1 > {v} AND a4 < {w}",
    "SELECT avg(a5 + a6), max(a8) FROM r WHERE a2 > {v}",
    "SELECT a11, a12, a13 FROM r WHERE a14 > {v} AND a15 < {w}",
    "SELECT sum(a16 * a1), min(a12) FROM r WHERE a13 > {v}",
    "SELECT a3, a5, a9, a16 FROM r WHERE a7 > {v}",
    "SELECT max(a14 + a15), count(*) FROM r WHERE a11 > {v} AND a2 < {w}",
)


def make_stream(num_queries: int, seed: int) -> List[Query]:
    """A pre-parsed stream cycling the shapes with fresh literals."""
    rng = random.Random(seed)
    stream: List[Query] = []
    for index in range(num_queries):
        sql = SHAPES[index % len(SHAPES)].format(
            v=rng.randint(0, 100), w=rng.randint(100, 200)
        )
        stream.append(parse_query(sql))
    return stream


def run_throughput(
    base_rows: int = 5_000,
    num_attrs: int = 16,
    warmup_queries: int = 160,
    measured_queries: int = 600,
    trials: int = 3,
) -> Dict[str, object]:
    """Best-trial steady-state QPS with the fast lane on and off.

    Trials are interleaved (on, off, on, off, ...) so slow machine
    phases hit both configurations.  Returns the per-config best QPS,
    the speedup, and the winning engine's cache statistics.
    """
    qps: Dict[str, List[float]] = {"on": [], "off": []}
    best_engine: Dict[str, H2OEngine] = {}
    num_rows = rows(base_rows)
    for _trial in range(max(1, trials)):
        for label, enabled in (("on", True), ("off", False)):
            gc.collect()
            table = generate_table("r", num_attrs, num_rows, rng=0)
            warm_table(table)
            engine = H2OEngine(
                table, EngineConfig(plan_cache=enabled)
            )
            for query in make_stream(warmup_queries, seed=5):
                engine.execute(query)
            stream = make_stream(measured_queries, seed=1)
            started = time.perf_counter()
            for query in stream:
                engine.execute(query)
            elapsed = time.perf_counter() - started
            rate = measured_queries / elapsed
            if not qps[label] or rate > max(qps[label]):
                best_engine[label] = engine
            qps[label].append(rate)
    best_on = max(qps["on"])
    best_off = max(qps["off"])
    engine_on = best_engine["on"]
    fast_hits = sum(
        1 for r in engine_on.reports if r.plan_cache_hit
    )
    return {
        "num_rows": num_rows,
        "num_attrs": num_attrs,
        "measured_queries": measured_queries,
        "trials": max(1, trials),
        "qps_on": best_on,
        "qps_off": best_off,
        "qps_on_trials": qps["on"],
        "qps_off_trials": qps["off"],
        "speedup": best_on / best_off,
        "plan_cache": engine_on.plan_cache.stats(),
        "operator_cache": dict(
            zip(
                ("size", "hits", "misses", "evictions"),
                engine_on.executor.operator_cache.stats(),
            )
        ),
        "fast_lane_hits": fast_hits,
        "total_queries": len(engine_on.reports),
    }


@register(
    "throughput",
    "steady-state queries/second: plan-cache fast lane on vs off",
)
def throughput() -> ExperimentResult:
    data = run_throughput()
    result = ExperimentResult(
        experiment_id="throughput",
        title=(
            "steady-state throughput after adaptation "
            f"({data['num_rows']} rows x {data['num_attrs']} attrs, "
            f"{len(SHAPES)} recurring shapes)"
        ),
        headers=["configuration", "best QPS", "vs fast lane off"],
        series={
            "on": data["qps_on_trials"],
            "off": data["qps_off_trials"],
        },
    )
    result.rows.append(
        [
            "fast lane on",
            round(data["qps_on"], 1),
            f"{data['speedup']:.2f}x",
        ]
    )
    result.rows.append(
        ["fast lane off", round(data["qps_off"], 1), "1.00x"]
    )
    result.notes.append(
        f"fast-lane hits: {data['fast_lane_hits']}/"
        f"{data['total_queries']} queries; plan cache "
        f"{data['plan_cache']}; operator cache {data['operator_cache']}"
    )
    result.notes.append(
        "expected: >= 2x QPS with the fast lane on — "
        + ("HOLDS" if data["speedup"] >= 2.0 else "BELOW")
    )
    return result
