"""Fig. 12 — accessing more than one column group per query.

A 25-attribute aggregation-with-filter query is answered from 1..5
coexisting groups whose union contains exactly the needed attributes
(e.g. 2 groups = 10 + 15 attributes).  Response times are normalized by
the single-group case.

Expected shape: multi-group access costs little — the paper even finds
it beneficial for highly selective queries — so narrow groups can be
combined gracefully instead of eagerly merging layouts.
"""

from __future__ import annotations

from ...execution.executor import Executor
from ...execution.strategies import AccessPlan, ExecutionStrategy
from ...storage.generator import generate_table
from ...workloads.microbench import aggregation_query
from ..harness import ExperimentResult, register, warm_table
from .common import analyze, default_config, perfect_group, rows, time_plan

TOTAL_ATTRS = 25
#: How the 25 attributes split across 2..5 groups (first part per paper).
SPLITS = {
    1: (25,),
    2: (10, 15),
    3: (8, 8, 9),
    4: (6, 6, 6, 7),
    5: (5, 5, 5, 5, 5),
}
SELECTIVITIES = (0.01, 0.1, 0.5, 1.0)


@register("fig12", "normalized cost of fusing 2..5 column groups")
def fig12() -> ExperimentResult:
    table = generate_table(
        "r", 60, rows(100_000), rng=32, initial_layout="column"
    )
    attrs = [f"a{i}" for i in range(1, TOTAL_ATTRS + 1)]
    warm_table(table)
    executor = Executor(default_config())

    group_sets = {}
    for count, split in SPLITS.items():
        groups = []
        start = 0
        for width in split:
            groups.append(perfect_group(table, attrs[start : start + width]))
            start += width
        group_sets[count] = tuple(groups)

    result = ExperimentResult(
        experiment_id="fig12",
        title="response time normalized by the single-group plan",
        headers=["selectivity"] + [f"{c} groups" for c in sorted(SPLITS)],
    )
    for selectivity in SELECTIVITIES:
        query = aggregation_query(
            attrs[:-1], where_attrs=[attrs[-1]], selectivity=selectivity
        )
        info = analyze(query, table)
        times = {}
        for count, groups in group_sets.items():
            plan = AccessPlan(ExecutionStrategy.FUSED, groups)
            times[count] = time_plan(executor, info, plan, repeats=9)
        base = times[1]
        result.rows.append(
            [f"{selectivity * 100:g}%"]
            + [round(times[c] / base, 3) for c in sorted(SPLITS)]
        )
    result.notes.append("values ~1.0 mean multi-group access is ~free")
    result.series["normalized"] = result.rows
    return result
