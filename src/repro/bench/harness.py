"""Experiment registry, measurement helpers, result formatting."""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from ..errors import BenchmarkError
from ..storage.relation import Table
from ..util.tables import format_table


@dataclass
class ExperimentResult:
    """One reproduced table/figure: a titled text table plus notes."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: Free-form payload for tests (series keyed by name, etc.).
    series: Dict[str, object] = field(default_factory=dict)
    seconds: float = 0.0

    def render(self) -> str:
        text = format_table(
            self.headers,
            self.rows,
            title=f"== {self.experiment_id}: {self.title} ==",
        )
        if self.notes:
            text += "\n" + "\n".join(f"   note: {n}" for n in self.notes)
        text += f"\n   (experiment wall time: {self.seconds:.1f}s)"
        return text


ExperimentFn = Callable[[], ExperimentResult]

_REGISTRY: Dict[str, ExperimentFn] = {}
_DESCRIPTIONS: Dict[str, str] = {}


def register(experiment_id: str, description: str):
    """Decorator registering an experiment under its paper id."""

    def wrap(fn: ExperimentFn) -> ExperimentFn:
        if experiment_id in _REGISTRY:
            raise BenchmarkError(
                f"experiment {experiment_id!r} registered twice"
            )
        _REGISTRY[experiment_id] = fn
        _DESCRIPTIONS[experiment_id] = description
        return fn

    return wrap


def _ensure_loaded() -> None:
    # Experiment modules self-register on import.
    from . import experiments  # noqa: F401


def available_experiments() -> List[str]:
    """Registered experiment ids with their descriptions."""
    _ensure_loaded()
    return [f"{k}: {_DESCRIPTIONS[k]}" for k in sorted(_REGISTRY)]


def get_experiment(experiment_id: str) -> ExperimentFn:
    _ensure_loaded()
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise BenchmarkError(
            f"unknown experiment {experiment_id!r} (known: {known})"
        ) from None


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one experiment and stamp its wall time."""
    fn = get_experiment(experiment_id)
    gc.collect()
    started = time.perf_counter()
    result = fn()
    result.seconds = time.perf_counter() - started
    return result


def run_experiment_isolated(experiment_id: str) -> ExperimentResult:
    """Run one experiment in a fresh Python subprocess.

    Experiments allocate and free hundreds of megabytes; running twenty
    of them in one process leaves each subsequent experiment a
    different heap, page-cache and allocator state than the first got.
    A fresh interpreter per experiment makes multi-experiment runs
    (``python -m repro.bench all``) measure what single-experiment runs
    measure.
    """
    import pickle
    import subprocess
    import sys
    import tempfile

    with tempfile.NamedTemporaryFile(suffix=".pkl", delete=False) as handle:
        out_path = handle.name
    code = (
        "import pickle\n"
        "from repro.bench.harness import run_experiment\n"
        f"result = run_experiment({experiment_id!r})\n"
        f"pickle.dump(result, open({out_path!r}, 'wb'))\n"
    )
    completed = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True
    )
    if completed.returncode != 0:
        raise BenchmarkError(
            f"experiment {experiment_id!r} failed in its subprocess:\n"
            f"{completed.stderr[-2000:]}"
        )
    with open(out_path, "rb") as handle:
        result = pickle.load(handle)
    import os

    os.unlink(out_path)
    return result


# Measurement helpers ---------------------------------------------------------


def warm_table(table: Table) -> int:
    """Touch every layout's data once (fault pages in before timing).

    A freshly generated table pays first-touch page faults on its first
    scan; warming keeps engine comparisons order-independent.
    """
    checksum = 0
    for layout in table.layouts:
        data = layout.data  # both concrete layouts expose the buffer
        checksum ^= int(data.ravel()[:: max(1, data.size // 4096)].sum())
    return checksum


def time_queries(engine, queries, repeats: int = 1) -> List[float]:
    """Run a query list through an engine; per-query seconds (best of
    ``repeats`` for micro-benchmarks, single pass otherwise)."""
    best: List[float] = []
    for query in queries:
        times = []
        for _ in range(repeats):
            report = engine.execute(query)
            times.append(report.seconds)
        best.append(min(times))
    return best


def median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])
