"""Benchmark harness reproducing every table and figure of the paper.

Each experiment in :mod:`repro.bench.experiments` regenerates one
table/figure as a text table (the same rows/series the paper plots).
Run them from the command line::

    python -m repro.bench --list
    python -m repro.bench fig7 table1
    python -m repro.bench all

Scale is controlled by the ``H2O_SCALE`` environment variable (default
1.0 ≈ laptop scale; the paper's absolute sizes are ~500× larger, so
absolute times differ — the *shapes* are what reproduce).
"""

from .harness import (
    ExperimentResult,
    available_experiments,
    get_experiment,
    run_experiment,
    warm_table,
)

__all__ = [
    "ExperimentResult",
    "available_experiments",
    "get_experiment",
    "run_experiment",
    "warm_table",
]
