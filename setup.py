"""Setup shim for environments whose setuptools lacks bdist_wheel.

All project metadata lives in pyproject.toml; this file only enables the
legacy editable-install path (``pip install -e . --no-use-pep517`` or
``python setup.py develop``) on machines without the ``wheel`` package.
"""

from setuptools import setup

setup()
