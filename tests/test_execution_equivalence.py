"""Cross-path equivalence: every (strategy × layout × codegen) combination
must return identical results — the core correctness contract."""

import numpy as np
import pytest

from repro.config import EngineConfig
from repro.execution import Executor, enumerate_plans
from repro.execution.strategies import ExecutionStrategy, fused_allowed
from repro.sql import analyze_query, parse_query
from repro.storage import generate_table
from repro.storage.stitcher import stitch_group

QUERIES = [
    "SELECT a1 FROM r",
    "SELECT a1, a2, a3 FROM r",
    "SELECT a1 FROM r WHERE a2 < 0",
    "SELECT a1, a2 FROM r WHERE a3 < 0 AND a4 > 0",
    "SELECT a1 + a2 FROM r",
    "SELECT a1 + a2 * a3 FROM r WHERE a4 < 100",
    "SELECT sum(a1) FROM r",
    "SELECT sum(a1), min(a2), max(a3), avg(a4), count(*) FROM r",
    "SELECT sum(a1 + a2 + a3) FROM r",
    "SELECT sum(a1 + a2 + a3 + a4) FROM r WHERE a5 < 0",
    "SELECT max(a1) FROM r WHERE a2 < 0 OR a3 > 0",
    "SELECT sum(a1) - min(a2) FROM r WHERE a3 < 0",
    "SELECT count(*) FROM r WHERE a1 < 0 AND a2 < 0 AND a3 < 0",
    "SELECT a1 FROM r WHERE a1 > 2000000000",  # empty result
    "SELECT sum(a1) FROM r WHERE a1 > 2000000000",  # empty aggregation
    "SELECT avg(a1 + a2) FROM r WHERE a3 != 0",
    "SELECT a1 - a2, a3 * 2 FROM r WHERE NOT a4 < 0",
]


def all_results(query_sql, tables, executors):
    results = []
    for table in tables:
        info = analyze_query(parse_query(query_sql), table.schema)
        for plan in enumerate_plans(table, info):
            for executor in executors:
                result, stats = executor.run_plan(info, plan)
                results.append((result, stats.plan, stats.used_codegen))
    return results


@pytest.fixture(scope="module")
def tables():
    column = generate_table("r", 8, 3000, rng=5, initial_layout="column")
    row = generate_table("r", 8, 3000, rng=5, initial_layout="row")
    # A third table with a partial group + singles (mixed layouts).
    mixed = generate_table("r", 8, 3000, rng=5, initial_layout="column")
    group, _ = stitch_group(
        mixed.layouts, ("a1", "a2", "a3"), mixed.schema
    )
    mixed.add_layout(group)
    return [column, row, mixed]


@pytest.fixture(scope="module")
def executors():
    return [
        Executor(EngineConfig(use_codegen=True)),
        Executor(EngineConfig(use_codegen=False)),
        Executor(EngineConfig(use_codegen=True, vector_size=257)),
    ]


@pytest.mark.parametrize("sql", QUERIES)
def test_all_paths_agree(sql, tables, executors):
    results = all_results(sql, tables, executors)
    assert len(results) >= 6
    baseline, base_plan, _ = results[0]
    for result, plan, used_codegen in results[1:]:
        assert baseline.allclose(result), (
            f"{sql}: plan {plan} (codegen={used_codegen}) diverged from "
            f"{base_plan}"
        )


def test_results_match_numpy_reference(tables, executors):
    """Independent ground truth, not just self-consistency."""
    table = tables[0]
    a1 = np.asarray(table.column("a1"))
    a2 = np.asarray(table.column("a2"))
    a3 = np.asarray(table.column("a3"))
    mask = (a3 < 0) & (a2 > 0)

    info = analyze_query(
        parse_query("SELECT sum(a1 + a2) FROM r WHERE a3 < 0 AND a2 > 0"),
        table.schema,
    )
    plan = enumerate_plans(table, info)[0]
    result, _ = executors[0].run_plan(info, plan)
    expected = float((a1[mask] + a2[mask]).sum())
    assert result.scalars()[0] == pytest.approx(expected)

    info = analyze_query(
        parse_query("SELECT a1, a1 + a2 FROM r WHERE a3 < 0"),
        table.schema,
    )
    plan = enumerate_plans(table, info)[0]
    result, _ = executors[0].run_plan(info, plan)
    keep = a3 < 0
    assert (result.column(0) == a1[keep]).all()
    assert (result.column(1) == (a1 + a2)[keep]).all()


def test_fused_allowed_rules(tables):
    column, row, mixed = tables
    assert not fused_allowed(column.layouts)  # all singles
    assert fused_allowed(row.layouts)
    group = mixed.find_group({"a1", "a2", "a3"})
    assert fused_allowed((group,))
    # A couple of stray singles alongside a group are tolerated...
    assert fused_allowed((group, column.layouts[0]))
    assert fused_allowed((group,) + tuple(column.layouts[:2]))
    # ...but not three or more, and never a singles-only cover.
    assert not fused_allowed((group,) + tuple(column.layouts[:3]))
    assert not fused_allowed(tuple(column.layouts[:2]))


def test_enumerate_plans_strategies(tables):
    column, row, mixed = tables
    info = analyze_query(
        parse_query("SELECT a1, a2 FROM r WHERE a3 < 0"), column.schema
    )
    plans_column = enumerate_plans(column, info)
    assert all(
        p.strategy is ExecutionStrategy.LATE for p in plans_column
    )
    plans_row = enumerate_plans(row, info)
    assert any(p.strategy is ExecutionStrategy.FUSED for p in plans_row)
    plans_mixed = enumerate_plans(mixed, info)
    # the a1-a3 group enables a fused plan on the mixed table
    assert any(
        p.strategy is ExecutionStrategy.FUSED for p in plans_mixed
    )


def test_operator_cache_reuses_across_constants(tables):
    """Same masked structure, different literals → one kernel."""
    executor = Executor(EngineConfig())
    table = tables[1]  # row layout
    first = analyze_query(
        parse_query("SELECT sum(a1) FROM r WHERE a2 < 100"), table.schema
    )
    second = analyze_query(
        parse_query("SELECT sum(a1) FROM r WHERE a2 < -5000"), table.schema
    )
    plan1 = enumerate_plans(table, first)[0]
    plan2 = enumerate_plans(table, second)[0]
    executor.run_plan(first, plan1)
    hits_before = executor.operator_cache.hits
    result, stats = executor.run_plan(second, plan2)
    assert executor.operator_cache.hits == hits_before + 1
    assert stats.codegen_cache_hit
    a1 = np.asarray(table.column("a1"))
    a2 = np.asarray(table.column("a2"))
    assert result.scalars()[0] == pytest.approx(float(a1[a2 < -5000].sum()))
