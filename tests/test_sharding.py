"""Unit + small end-to-end tests for the multi-process sharding tier.

The fast tier covers the pure pieces (partitioning, framed protocol,
payload packing, the shared combine contract, config knobs, segment
lifecycle) plus one small 2-shard end-to-end differential check.  The
heavyweight multi-process stress lives in ``test_sharding_stress.py``
behind the ``shard_stress`` marker.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.config import EngineConfig
from repro.core.system import H2OSystem, build_system
from repro.errors import AdaptationError, CatalogError, ShardError
from repro.execution.morsel import combine_partial_aggregates
from repro.sharding import ShardedSystem, hash_shard_of, range_splits
from repro.sharding.partition import (
    hash_assignments,
    pack_by_dtype,
    partition_rows,
)
from repro.sharding.protocol import (
    decode_block,
    decode_partial,
    encode_block,
    encode_partial,
)
from repro.sharding.shm import (
    create_segment,
    leaked_segments,
    owned_segments,
    segment_view,
    unlink_segment,
)
from repro.sql.parser import parse_query
from repro.storage import generate_table


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------


class TestPartitioning:
    def test_range_splits_cover_and_are_contiguous(self):
        for rows in (0, 1, 7, 100, 101):
            for shards in (1, 2, 3, 5):
                splits = range_splits(rows, shards)
                assert len(splits) == shards
                assert splits[0][0] == 0 and splits[-1][1] == rows
                for (_, hi), (lo, _) in zip(splits, splits[1:]):
                    assert hi == lo
                sizes = [hi - lo for lo, hi in splits]
                assert max(sizes) - min(sizes) <= 1

    def test_range_partition_preserves_global_order(self):
        cols = {"a": np.arange(10), "b": np.arange(10) * 2}
        parts = partition_rows(cols, 10, 3, "range", None)
        rebuilt = np.concatenate([p["a"] for p in parts])
        assert np.array_equal(rebuilt, cols["a"])

    def test_hash_assignment_scalar_matches_vectorized(self):
        values = np.array([-1000, -1, 0, 1, 42, 999, 2**31], dtype=np.int64)
        for shards in (1, 2, 3, 5):
            vec = hash_assignments(values, shards)
            for value, sid in zip(values, vec):
                assert hash_shard_of(int(value), shards) == int(sid)

    def test_hash_partition_is_stable_and_complete(self):
        rng = np.random.default_rng(5)
        cols = {
            "k": rng.integers(-1000, 1000, 500),
            "v": rng.integers(-1000, 1000, 500),
        }
        parts = partition_rows(cols, 500, 3, "hash", "k")
        assert sum(len(p["k"]) for p in parts) == 500
        # Stability: same input, same assignment.
        again = partition_rows(cols, 500, 3, "hash", "k")
        for p, q in zip(parts, again):
            assert np.array_equal(p["k"], q["k"])
            assert np.array_equal(p["v"], q["v"])

    def test_hash_partition_requires_key(self):
        with pytest.raises(ValueError):
            partition_rows({"a": np.arange(4)}, 4, 2, "hash", None)
        with pytest.raises(ValueError):
            partition_rows({"a": np.arange(4)}, 4, 2, "hash", "missing")

    def test_pack_by_dtype_groups_and_orders(self):
        cols = {
            "a": np.arange(4, dtype=np.int64),
            "b": np.arange(4, dtype=np.float64),
            "c": np.arange(4, dtype=np.int64) * 3,
        }
        packs = pack_by_dtype(cols, ("a", "b", "c"))
        by_attrs = {attrs: block for attrs, block in packs}
        assert ("a", "c") in by_attrs and ("b",) in by_attrs
        assert np.array_equal(by_attrs[("a", "c")][1], cols["c"])


# ---------------------------------------------------------------------------
# Protocol payloads
# ---------------------------------------------------------------------------


class TestProtocolPayloads:
    def test_partial_roundtrip_preserves_none(self):
        count, states = 7.0, (None, 3.25, None, -0.0)
        out_count, out_states = decode_partial(
            encode_partial(count, states)
        )
        assert out_count == count
        assert out_states == states

    def test_partial_roundtrip_preserves_nan_bits(self):
        _, states = decode_partial(encode_partial(1.0, (float("nan"),)))
        assert math.isnan(states[0])

    def test_block_roundtrip(self):
        data = np.arange(12, dtype=np.int64).reshape(4, 3)
        meta, blob = encode_block(data)
        out = decode_block(meta, blob)
        assert out.dtype == data.dtype
        assert np.array_equal(out, data)
        out[0, 0] = 99  # decoded block owns its memory
        assert data[0, 0] == 0

    def test_empty_block_roundtrip(self):
        data = np.empty((0, 2), dtype=np.float64)
        meta, blob = encode_block(data)
        out = decode_block(meta, blob)
        assert out.shape == (0, 2)


# ---------------------------------------------------------------------------
# The shared combine contract (shard-count independence, pure form)
# ---------------------------------------------------------------------------


def _serial_payload(aggregates, values_by_slot):
    """One payload representing ALL rows (the serial reference)."""
    from repro.sql.expressions import AggregateFunc

    states = []
    count = float(len(values_by_slot[0]) if values_by_slot else 0)
    for i, agg in enumerate(aggregates):
        vals = values_by_slot[i]
        if agg.func is AggregateFunc.COUNT:
            states.append(None)
        elif agg.func in (AggregateFunc.SUM, AggregateFunc.AVG):
            states.append(float(sum(vals)))
        elif agg.func is AggregateFunc.MIN:
            states.append(float(min(vals)) if len(vals) else None)
        else:
            states.append(float(max(vals)) if len(vals) else None)
    return count, tuple(states)


def _sharded_payloads(aggregates, values_by_slot, splits):
    from repro.sql.expressions import AggregateFunc

    payloads = []
    for lo, hi in splits:
        states = []
        for i, agg in enumerate(aggregates):
            vals = values_by_slot[i][lo:hi]
            if agg.func is AggregateFunc.COUNT:
                states.append(None)
            elif agg.func in (AggregateFunc.SUM, AggregateFunc.AVG):
                states.append(float(sum(vals)))
            elif agg.func is AggregateFunc.MIN:
                states.append(float(min(vals)) if len(vals) else None)
            else:
                states.append(float(max(vals)) if len(vals) else None)
        payloads.append((float(hi - lo), tuple(states)))
    return payloads


def _all_aggregates():
    from repro.sql.expressions import (
        Aggregate,
        AggregateFunc,
        ColumnRef,
    )

    return (
        Aggregate(AggregateFunc.COUNT, None),
        Aggregate(AggregateFunc.SUM, ColumnRef("a")),
        Aggregate(AggregateFunc.AVG, ColumnRef("b")),
        Aggregate(AggregateFunc.MIN, ColumnRef("c")),
        Aggregate(AggregateFunc.MAX, ColumnRef("d")),
    )


class TestCombineContract:
    def test_empty_input_matches_serial_semantics(self):
        aggregates = _all_aggregates()
        values = [[] for _ in aggregates]
        serial, _ = combine_partial_aggregates(
            aggregates, [_serial_payload(aggregates, values)]
        )
        sharded, _ = combine_partial_aggregates(
            aggregates,
            _sharded_payloads(aggregates, values, [(0, 0), (0, 0)]),
        )
        for agg in aggregates:
            a, b = serial[agg], sharded[agg]
            assert (a == b) or (math.isnan(a) and math.isnan(b))

    @pytest.mark.parametrize("shards", [1, 2, 3, 5])
    def test_shard_count_independence(self, shards):
        rng = np.random.default_rng(17)
        aggregates = _all_aggregates()
        n = 61  # deliberately not divisible by the shard counts
        values = [
            [int(v) for v in rng.integers(-1000, 1000, n)]
            for _ in aggregates
        ]
        serial, _ = combine_partial_aggregates(
            aggregates, [_serial_payload(aggregates, values)]
        )
        splits = range_splits(n, shards)
        sharded, _ = combine_partial_aggregates(
            aggregates, _sharded_payloads(aggregates, values, splits)
        )
        for agg in aggregates:
            # VALUE_BOUND-style int inputs: float64 arithmetic is exact,
            # so regrouping must be bit-identical.
            assert serial[agg] == sharded[agg]


def test_hypothesis_shard_count_independence():
    """Property: the combine fold is independent of how rows are split.

    Finite ints bounded like the testkit's VALUE_BOUND (exact float64
    arithmetic) plus the empty-input edge (MIN/MAX/AVG of zero rows is
    NaN, SUM is 0.0, COUNT is 0.0) — for every shard count including
    splits that leave some shards empty.
    """
    hypothesis = pytest.importorskip("hypothesis")
    from hypothesis import given, settings, strategies as st

    aggregates = _all_aggregates()

    @settings(deadline=None, max_examples=60)
    @given(
        rows=st.lists(
            st.integers(min_value=-1000, max_value=1000),
            min_size=0,
            max_size=40,
        ),
        shards=st.integers(min_value=1, max_value=5),
    )
    def property_check(rows, shards):
        values = [list(rows) for _ in aggregates]
        serial, serial_cnt = combine_partial_aggregates(
            aggregates, [_serial_payload(aggregates, values)]
        )
        splits = range_splits(len(rows), shards)
        sharded, sharded_cnt = combine_partial_aggregates(
            aggregates, _sharded_payloads(aggregates, values, splits)
        )
        assert serial_cnt == sharded_cnt
        for agg in aggregates:
            a, b = serial[agg], sharded[agg]
            assert (a == b) or (math.isnan(a) and math.isnan(b))

    property_check()


# ---------------------------------------------------------------------------
# Shared-memory lifecycle (in-process)
# ---------------------------------------------------------------------------


class TestSegmentLifecycle:
    def test_create_view_unlink(self):
        data = np.arange(12, dtype=np.int64).reshape(3, 4)
        name, seg = create_segment(data)
        assert name in owned_segments()
        view = segment_view(seg, data.shape, data.dtype)
        assert np.array_equal(view, data)
        unlink_segment(name)
        assert name not in owned_segments()
        assert name not in leaked_segments()

    def test_unlink_is_idempotent(self):
        name, _ = create_segment(np.arange(3))
        unlink_segment(name)
        unlink_segment(name)  # no raise

    def test_zero_row_segment(self):
        data = np.empty((2, 0), dtype=np.int64)
        name, seg = create_segment(data)
        view = segment_view(seg, data.shape, data.dtype)
        assert view.shape == (2, 0)
        unlink_segment(name)


# ---------------------------------------------------------------------------
# Config knobs
# ---------------------------------------------------------------------------


class TestShardConfig:
    def test_defaults_off(self):
        cfg = EngineConfig()
        assert cfg.shard_count == 0
        assert cfg.shard_partition == "range"

    def test_validation(self):
        with pytest.raises(AdaptationError):
            EngineConfig(shard_count=-1)
        with pytest.raises(AdaptationError):
            EngineConfig(shard_partition="modulo")
        with pytest.raises(AdaptationError):
            EngineConfig(scatter_timeout=0.0)

    def test_build_system_dispatch(self):
        assert isinstance(build_system(EngineConfig()), H2OSystem)
        sharded = build_system(EngineConfig(shard_count=2))
        try:
            assert isinstance(sharded, ShardedSystem)
            assert sharded.shard_count == 2
        finally:
            sharded.close()

    def test_sharded_system_rejects_zero_shards(self):
        with pytest.raises(ShardError):
            ShardedSystem(EngineConfig(shard_count=0))


# ---------------------------------------------------------------------------
# Small end-to-end differential check (one 2-shard system, fast)
# ---------------------------------------------------------------------------


QUERIES = (
    "SELECT sum(a1 + a2) FROM t WHERE a3 > 100",
    "SELECT count(*) FROM t WHERE a1 > 500",
    "SELECT avg(a2), min(a3), max(a4) FROM t WHERE a1 > -100",
    "SELECT min(a1), avg(a1), sum(a1) FROM t",
    "SELECT a1, a2 FROM t WHERE a3 > 950",
    "SELECT min(a2) FROM t WHERE a1 > 99999",  # empty on every shard
)


def _identical(a, b):
    return a.data.shape == b.data.shape and np.array_equal(
        np.asarray(a.data, dtype=np.float64),
        np.asarray(b.data, dtype=np.float64),
        equal_nan=True,
    )


class TestShardedEndToEnd:
    def test_two_shards_bit_identical_and_clean(self):
        table = generate_table("t", 5, 3000, rng=9)
        serial = H2OSystem()
        serial.register(table)
        with build_system(EngineConfig(shard_count=2)) as sharded:
            sharded.register(table)
            for sql in QUERIES:
                want = serial.execute(sql).result
                report = sharded.execute(sql)
                assert _identical(report.result, want), sql
                assert report.shards_used == 2
                assert report.strategy.startswith("sharded-scatter-gather")
            # Appends reach the shards and stay bit-identical.
            rng = np.random.default_rng(2)
            cols = {
                n: rng.integers(-1000, 1000, 333)
                for n in table.schema.names
            }
            serial.catalog.get("t").append_rows(cols)
            sharded.append_rows("t", cols)
            assert sharded.num_rows("t") == 3333
            for sql in QUERIES:
                assert _identical(
                    sharded.execute(sql).result,
                    serial.execute(sql).result,
                ), sql
            # Unknown tables surface as CatalogError, like H2OSystem.
            with pytest.raises(CatalogError):
                sharded.execute("SELECT count(*) FROM nope")
        # Close unlinked everything this system created.
        assert leaked_segments() == ()

    def test_close_is_idempotent_and_blocks_use(self):
        system = ShardedSystem(EngineConfig(shard_count=1))
        system.close()
        system.close()
        with pytest.raises(ShardError):
            system.register(generate_table("t", 3, 100, rng=0))

    def test_hash_partition_single_shard_routing(self):
        table = generate_table("t", 4, 2000, rng=3)
        serial = H2OSystem()
        serial.register(table)
        cfg = EngineConfig(shard_count=3, shard_partition="hash")
        with build_system(cfg) as sharded:
            sharded.register(table)
            eq_sql = "SELECT sum(a2), count(*) FROM t WHERE a1 = 7"
            want = serial.execute(eq_sql).result
            report = sharded.execute(eq_sql)
            assert _identical(report.result, want)
            assert report.shards_used == 1  # routed by the hash key
            # The same shape with a different literal routes by value.
            other = sharded.execute(
                "SELECT sum(a2), count(*) FROM t WHERE a1 = -900"
            )
            assert _identical(
                other.result,
                serial.execute(
                    "SELECT sum(a2), count(*) FROM t WHERE a1 = -900"
                ).result,
            )
            # Non-key predicates still scatter everywhere.
            scatter = sharded.execute(
                "SELECT sum(a1) FROM t WHERE a2 > 0"
            )
            assert scatter.shards_used == 3
            assert _identical(
                scatter.result,
                serial.execute("SELECT sum(a1) FROM t WHERE a2 > 0").result,
            )
        assert leaked_segments() == ()

    def test_projection_parses_identically(self):
        # Sanity that the partials rewrite only applies to aggregations.
        query = parse_query("SELECT a1 FROM t WHERE a2 > 0")
        assert not query.is_aggregation
