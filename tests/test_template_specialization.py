"""Template fast-path selection: the generated source must contain the
specialization each (query shape × layout) case is designed to get."""

import numpy as np
import pytest

from repro.codegen import operator_source
from repro.execution.strategies import AccessPlan, ExecutionStrategy
from repro.sql import analyze_query, parse_query
from repro.storage import generate_table
from repro.storage.stitcher import stitch_group


@pytest.fixture(scope="module")
def table():
    t = generate_table("r", 40, 2000, rng=3, initial_layout="column")
    row, _ = stitch_group(t.layouts, t.schema.names, t.schema, full_width=True)
    t.add_layout(row)
    group, _ = stitch_group(
        t.layouts, tuple(f"a{i}" for i in range(1, 9)), t.schema
    )
    t.add_layout(group)
    return t


def source_for(table, sql, layouts, strategy=ExecutionStrategy.FUSED):
    info = analyze_query(parse_query(sql), table.schema)
    plan = AccessPlan(strategy, layouts)
    return operator_source(info, plan)


def group_of(table):
    return table.find_group({f"a{i}" for i in range(1, 9)})


def row_of(table):
    return [l for l in table.layouts if l.width == table.schema.width][0]


class TestFusedFastPaths:
    def test_unfiltered_projection_is_block_copy(self, table):
        source = source_for(
            table, "SELECT a1, a2, a3 FROM r", (group_of(table),)
        )
        assert ".astype(np.int64, copy=True)" in source
        assert "for start" not in source  # no block loop at all

    def test_unfiltered_plain_aggregation_is_axis_reduction(self, table):
        # 5 of the group's 8 attributes are aggregated -> dense buffer,
        # whole-buffer axis reductions.
        source = source_for(
            table,
            "SELECT sum(a1), sum(a2), sum(a4), sum(a5), min(a3) FROM r",
            (group_of(table),),
        )
        assert "einsum('ij->j'" in source
        assert ".min(axis=0)" in source

    def test_sparse_unfiltered_aggregation_per_column(self, table):
        # Only 3 of 8 attributes -> per-column strided reductions.
        source = source_for(
            table,
            "SELECT sum(a1), sum(a2), min(a3) FROM r",
            (group_of(table),),
        )
        assert "einsum('ij->j'" not in source
        assert ".sum(dtype=np.float64)" in source

    def test_wide_buffer_gets_per_column_reductions(self, table):
        source = source_for(
            table, "SELECT sum(a1), sum(a2) FROM r", (row_of(table),)
        )
        # 2 needed of 40: no whole-buffer reduction, per-column sums.
        assert "einsum('ij->j'" not in source
        assert source.count(".sum(dtype=np.float64)") == 2

    def test_filtered_aggregation_compacts_with_take(self, table):
        # 5 of 8 select attributes -> whole-tuple compaction per block.
        source = source_for(
            table,
            "SELECT sum(a1), sum(a2), sum(a4), sum(a5), sum(a6) "
            "FROM r WHERE a3 < 0",
            (group_of(table),),
        )
        assert "np.flatnonzero" in source
        assert ".take(idx, axis=0)" in source

    def test_wide_buffer_compacts_per_column(self, table):
        source = source_for(
            table,
            "SELECT sum(a1), sum(a2) FROM r WHERE a3 < 0",
            (row_of(table),),
        )
        assert ".take(idx, axis=0)" not in source  # no 40-wide row copy
        assert ".take(idx)" in source  # per-column takes

    def test_add_chain_fuses_to_rowsum(self, table):
        source = source_for(
            table, "SELECT sum(a1 + a2 + a3 + a4) FROM r", (group_of(table),)
        )
        assert "einsum('ij->i'" in source

    def test_mixed_ops_do_not_rowsum(self, table):
        source = source_for(
            table, "SELECT sum(a1 * a2 + a3) FROM r", (group_of(table),)
        )
        assert "einsum('ij->i'" not in source
        assert "np.multiply" in source

    def test_predicate_chain_reuses_mask(self, table):
        source = source_for(
            table,
            "SELECT a1 FROM r WHERE a2 < 0 AND a3 > 0 AND a4 != 5",
            (group_of(table),),
        )
        assert source.count("np.logical_and") == 2
        assert "out=m0" in source


class TestLateFaithfulness:
    def test_late_materializes_per_operator(self, table):
        source = source_for(
            table,
            "SELECT sum(a1 + a2 + a3 + a4) FROM r",
            tuple(table.narrowest_cover([f"a{i}" for i in range(1, 5)])),
            strategy=ExecutionStrategy.LATE,
        )
        # Three adds, three fresh temporaries, no in-place reuse.
        assert source.count("np.add") == 3
        assert "out=" not in source
        assert "einsum" not in source

    def test_late_selection_vector_pipeline(self, table):
        source = source_for(
            table,
            "SELECT a1 FROM r WHERE a2 < 0 AND a3 > 0",
            tuple(table.narrowest_cover(["a1", "a2", "a3"])),
            strategy=ExecutionStrategy.LATE,
        )
        assert "np.flatnonzero" in source
        assert "sel = sel[" in source  # conjunct-by-conjunct refinement
        assert "[sel]" in source  # gathers at qualifying positions

    def test_parameters_not_inlined(self, table):
        source = source_for(
            table,
            "SELECT a1 FROM r WHERE a2 < 123456789",
            (group_of(table),),
        )
        assert "123456789" not in source
        assert "params[0]" in source
