"""Morsel-driven parallel scans and zone-map pruning.

Covers the PR 5 subsystem bottom-up:

- **ScanPool units** — grant budget arithmetic (external load deducts
  from the helper budget), dynamic work stealing covering every index
  exactly once, and error propagation out of helper threads;
- **plan_morsels decisions** — when morsel execution engages (parallel
  above the row threshold, pruning at any size) and when plain serial
  execution is the chosen fast path;
- **prune_mask rules** — every comparison operator's keep rule,
  literal-on-the-left normalization, conservative fallbacks, NaN;
- **zone-map exactness properties** (hypothesis) — built, extended
  (append), and stitched zone maps always equal brute-force per-morsel
  min/max, and a pruned morsel provably holds zero qualifying rows;
- **engine-level bit-identity** — parallel answers equal serial answers
  bit for bit, through the fast lane and with fresh literals;
- **per-morsel deadline** — the once-latch increments
  ``deadline_aborts`` exactly once under concurrent expiry;
- **parallel_stress** — scan-pool helpers racing service workers,
  background adaptation, and concurrent appends (dedicated CI job).

The generated tables hold integers with |v| < 2**31, so float64 sums
over a few thousand rows are exact and order-independent: parallel and
serial runs must agree bit-for-bit, not approximately.
"""

from __future__ import annotations

import threading
import time

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from tests.conftest import wait_until
from repro.config import EngineConfig
from repro.core.engine import H2OEngine
from repro.errors import QueryTimeoutError
from repro.execution.morsel import (
    MorselSettings,
    keep_mask_for,
    plan_morsels,
)
from repro.execution.parallel import ScanPool
from repro.sql import parse_query
from repro.sql.analyzer import analyze_query
from repro.sql.expressions import (
    ColumnRef,
    Comparison,
    ComparisonOp,
    Literal,
)
from repro.storage import Schema, Table, generate_table
from repro.storage.stitcher import stitch_group, stitch_single_columns
from repro.storage.zonemap import (
    layout_zone_maps,
    morsel_ranges,
    num_morsels_for,
    prune_mask,
)


def make_info(table: Table, sql: str):
    return analyze_query(parse_query(sql), table.schema)


def settings_for(config: EngineConfig) -> MorselSettings:
    return MorselSettings.from_config(config)


# ---------------------------------------------------------------------------
# ScanPool: grant arithmetic, work stealing, error propagation
# ---------------------------------------------------------------------------


class TestScanPool:
    def test_grant_budget_and_release(self):
        pool = ScanPool(max_threads=4)
        grant = pool.acquire(4)
        assert grant.threads == 4  # caller + 3 helpers
        # Helpers already reserved: a second caller gets what is left.
        second = pool.acquire(4)
        assert second.threads == 1  # 1 (caller) + 3 reserved = 4 occupied
        second.release()
        grant.release()
        # Budget fully restored.
        with pool.acquire(4) as fresh:
            assert fresh.threads == 4
        assert pool.snapshot()["reserved"] == 0

    def test_external_load_degrades_toward_serial(self):
        pool = ScanPool(max_threads=4)
        busy = {"count": 0}
        pool.register_load("svc", lambda: busy["count"])
        try:
            # The caller is assumed to be one of the busy workers, so
            # only the *other* two occupy slots: 4 - (1 + 2) = 1 helper.
            busy["count"] = 3
            assert pool.acquire(4).threads == 2
            # Saturated service: zero helpers, scan runs serially.
            busy["count"] = 4
            assert pool.acquire(4).threads == 1
            # A broken provider is advisory only — never blocks grants.
            pool.register_load("broken", lambda: 1 // 0)
            busy["count"] = 0
            assert pool.acquire(2).threads == 2
        finally:
            pool.unregister_load("svc")
            pool.unregister_load("broken")

    def test_acquire_always_succeeds(self):
        pool = ScanPool(max_threads=1)
        with pool.acquire(8) as grant:
            assert grant.threads == 1  # serial, but never refused

    def test_map_indexed_covers_every_index_exactly_once(self):
        pool = ScanPool(max_threads=4)
        total = 257
        hits = np.zeros(total, dtype=np.int64)
        lock = threading.Lock()

        def fn(index: int) -> None:
            with lock:
                hits[index] += 1

        with pool.acquire(4) as grant:
            used = grant.map_indexed(total, fn)
        assert used >= 1
        assert (hits == 1).all(), "an index was skipped or run twice"

    def test_map_indexed_caps_helpers_at_work_items(self):
        pool = ScanPool(max_threads=8)
        with pool.acquire(8) as grant:
            used = grant.map_indexed(1, lambda i: None)
        assert used == 1  # one work item never fans out

    def test_map_indexed_propagates_helper_errors(self):
        pool = ScanPool(max_threads=4)

        def fn(index: int) -> None:
            if index == 37:
                raise ValueError("boom at 37")

        with pool.acquire(4) as grant:
            with pytest.raises(ValueError, match="boom at 37"):
                grant.map_indexed(100, fn)
        # The pool survives a failed scan and serves the next one.
        with pool.acquire(4) as grant:
            assert grant.map_indexed(16, lambda i: None) >= 1
        assert pool.snapshot()["reserved"] == 0


# ---------------------------------------------------------------------------
# plan_morsels: when morsel execution engages
# ---------------------------------------------------------------------------


class TestPlanMorsels:
    def setup_method(self):
        self.table = generate_table("r", 6, 4096, rng=3)
        self.pool = ScanPool(max_threads=4)

    def plan(self, sql: str, **overrides):
        knobs = dict(
            vector_size=64, morsel_rows=256, parallel_threshold_rows=1024
        )
        knobs.update(overrides)
        config = EngineConfig(**knobs)
        info = make_info(self.table, sql)
        return plan_morsels(
            info,
            self.table.layouts,
            self.table.num_rows,
            settings_for(config),
            self.pool,
        )

    def test_disabled_knobs_mean_plain_serial(self):
        mp = self.plan(
            "SELECT sum(a1) FROM r WHERE a2 > 0",
            parallel_scans=False,
            zone_maps=False,
        )
        assert mp is None

    def test_below_threshold_without_pruning_stays_serial(self):
        mp = self.plan(
            "SELECT sum(a1) FROM r WHERE a2 > 0",
            parallel_threshold_rows=1_000_000,
        )
        assert mp is None

    def test_pruning_engages_below_the_parallel_threshold(self):
        # Literal beyond the data range: every morsel is prunable, and
        # pruning pays regardless of table size.
        mp = self.plan(
            "SELECT sum(a1) FROM r WHERE a2 > 4000000000",
            parallel_threshold_rows=1_000_000,
        )
        assert mp is not None
        assert mp.morsels_total == num_morsels_for(4096, 256)
        assert mp.morsels_pruned == mp.morsels_total
        assert mp.ranges == []
        assert mp.want_threads == 1

    def test_parallel_above_threshold_caps_threads(self):
        mp = self.plan(
            "SELECT sum(a1) FROM r WHERE a2 > 0", max_scan_threads=2
        )
        assert mp is not None
        assert mp.want_threads == 2
        assert mp.morsels_pruned == 0
        assert mp.ranges == morsel_ranges(4096, 256)

    def test_zero_cap_means_pool_maximum(self):
        mp = self.plan(
            "SELECT sum(a1) FROM r WHERE a2 > 0", max_scan_threads=0
        )
        assert mp is not None
        assert mp.want_threads == self.pool.max_threads

    def test_single_thread_pool_still_prunes(self):
        info = make_info(
            self.table, "SELECT count(*) FROM r WHERE a1 > 4000000000"
        )
        mp = plan_morsels(
            info,
            self.table.layouts,
            self.table.num_rows,
            settings_for(
                EngineConfig(
                    vector_size=64,
                    morsel_rows=256,
                    parallel_threshold_rows=1,
                )
            ),
            ScanPool(max_threads=1),
        )
        assert mp is not None and mp.want_threads == 1
        assert mp.morsels_pruned == mp.morsels_total


# ---------------------------------------------------------------------------
# prune_mask: per-operator keep rules
# ---------------------------------------------------------------------------


def cmp(attr: str, op: ComparisonOp, value: float) -> Comparison:
    return Comparison(op, ColumnRef(attr), Literal(value))


class TestPruneRules:
    # Three morsels with bounds [0,10], [10,20], [20,30].
    MINS = np.array([0.0, 10.0, 20.0])
    MAXS = np.array([10.0, 20.0, 30.0])

    def mask(self, *conjuncts):
        stats = {"a1": (self.MINS, self.MAXS)}
        return prune_mask(3, conjuncts, lambda attr: stats.get(attr))

    def test_lt_keeps_morsels_whose_min_may_match(self):
        assert self.mask(cmp("a1", ComparisonOp.LT, 10.0)).tolist() == [
            True, False, False,
        ]

    def test_le_uses_inclusive_bound(self):
        assert self.mask(cmp("a1", ComparisonOp.LE, 10.0)).tolist() == [
            True, True, False,
        ]

    def test_gt_keeps_morsels_whose_max_may_match(self):
        assert self.mask(cmp("a1", ComparisonOp.GT, 20.0)).tolist() == [
            False, False, True,
        ]

    def test_ge_uses_inclusive_bound(self):
        assert self.mask(cmp("a1", ComparisonOp.GE, 20.0)).tolist() == [
            False, True, True,
        ]

    def test_eq_keeps_the_covering_morsels(self):
        assert self.mask(cmp("a1", ComparisonOp.EQ, 15.0)).tolist() == [
            False, True, False,
        ]

    def test_ne_prunes_only_constant_morsels(self):
        mins = np.array([5.0, 0.0])
        maxs = np.array([5.0, 10.0])
        mask = prune_mask(
            2,
            [cmp("a1", ComparisonOp.NE, 5.0)],
            lambda attr: (mins, maxs),
        )
        assert mask.tolist() == [False, True]

    def test_literal_on_the_left_is_normalized(self):
        # 20 < a1 prunes like a1 > 20.
        flipped = Comparison(ComparisonOp.LT, Literal(20.0), ColumnRef("a1"))
        assert self.mask(flipped).tolist() == [False, False, True]

    def test_conjuncts_intersect(self):
        mask = self.mask(
            cmp("a1", ComparisonOp.GT, 5.0), cmp("a1", ComparisonOp.LT, 15.0)
        )
        assert mask.tolist() == [True, True, False]

    def test_unknown_attr_and_complex_conjuncts_keep_everything(self):
        complex_conjunct = Comparison(
            ComparisonOp.LT, ColumnRef("a1"), ColumnRef("a2")
        )
        assert self.mask(cmp("zzz", ComparisonOp.LT, -1.0)).all()
        assert self.mask(complex_conjunct).all()

    def test_mismatched_stats_length_prunes_nothing(self):
        stats = (np.zeros(7), np.ones(7))  # wrong granularity
        mask = prune_mask(
            3, [cmp("a1", ComparisonOp.LT, -1.0)], lambda attr: stats
        )
        assert mask.all()

    def test_all_nan_morsel_is_pruned(self):
        mins = np.array([np.nan, 0.0])
        maxs = np.array([np.nan, 10.0])
        mask = prune_mask(
            2,
            [cmp("a1", ComparisonOp.GT, -np.inf)],
            lambda attr: (mins, maxs),
        )
        assert mask.tolist() == [False, True]


# ---------------------------------------------------------------------------
# Zone-map exactness properties (hypothesis)
# ---------------------------------------------------------------------------

ATTRS = tuple(f"c{i}" for i in range(4))


@st.composite
def zoned_tables(draw):
    num_rows = draw(st.integers(min_value=1, max_value=300))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    layout = draw(st.sampled_from(["column", "row"]))
    morsel_rows = draw(st.sampled_from([16, 32, 64, 128]))
    rng = np.random.default_rng(seed)
    columns = {
        name: rng.integers(-100, 100, size=num_rows, dtype=np.int64)
        for name in ATTRS
    }
    schema = Schema.from_names(ATTRS)
    table = Table.from_columns("r", schema, columns, layout)
    return table, columns, morsel_rows


def assert_maps_exact(layout, morsel_rows: int) -> None:
    """Every attribute's zone maps equal brute-force per-morsel min/max."""
    maps = layout_zone_maps(layout, morsel_rows)
    ranges = morsel_ranges(layout.num_rows, morsel_rows)
    assert maps.num_morsels == len(ranges)
    for attr in layout.attrs:
        column = np.asarray(layout.column(attr), dtype=np.float64)
        mins, maxs = maps.stats_for(attr)
        for i, (lo, hi) in enumerate(ranges):
            assert mins[i] == column[lo:hi].min()
            assert maxs[i] == column[lo:hi].max()


@given(zoned_tables())
@settings(max_examples=40, deadline=None)
def test_zone_maps_exact_after_build_and_append(case):
    table, columns, morsel_rows = case
    for layout in table.layouts:
        assert_maps_exact(layout, morsel_rows)
    # Append a batch that grows the tail morsel and adds new ones: the
    # incremental extension must stay brute-force exact.
    rng = np.random.default_rng(99)
    batch = int(morsel_rows * 1.5)
    table.append_rows(
        {
            name: rng.integers(-100, 100, size=batch, dtype=np.int64)
            for name in ATTRS
        }
    )
    for layout in table.layouts:
        assert_maps_exact(layout, morsel_rows)


@given(
    zoned_tables(),
    st.lists(st.sampled_from(ATTRS), min_size=1, max_size=4, unique=True),
)
@settings(max_examples=30, deadline=None)
def test_zone_maps_exact_after_stitch(case, attrs):
    table, _columns, morsel_rows = case
    group, _stats = stitch_group(
        table.layouts, attrs, table.schema, morsel_rows=morsel_rows
    )
    assert_maps_exact(group, morsel_rows)
    singles, _stats = stitch_single_columns(
        table.layouts, attrs, morsel_rows=morsel_rows
    )
    for single in singles:
        assert_maps_exact(single, morsel_rows)


@given(zoned_tables(), st.data())
@settings(max_examples=40, deadline=None)
def test_pruned_morsels_hold_zero_qualifying_rows(case, data):
    """The exactness invariant behind selectivity feedback: a pruned
    morsel contains no row satisfying the predicate, ever."""
    table, columns, morsel_rows = case
    attr = data.draw(st.sampled_from(ATTRS))
    op = data.draw(st.sampled_from(["<", "<=", ">", ">=", "=", "!="]))
    value = data.draw(st.integers(min_value=-120, max_value=120))
    sql = f"SELECT count(*) FROM r WHERE {attr} {op} {value}"
    info = make_info(table, sql)
    keep = keep_mask_for(
        info, table.layouts, table.num_rows, morsel_rows
    )
    assert keep is not None
    column = columns[attr]
    mask = {
        "<": column < value,
        "<=": column <= value,
        ">": column > value,
        ">=": column >= value,
        "=": column == value,
        "!=": column != value,
    }[op]
    for i, (lo, hi) in enumerate(morsel_ranges(table.num_rows, morsel_rows)):
        if not keep[i]:
            assert not mask[lo:hi].any(), (
                f"pruned morsel {i} holds qualifying rows for {sql!r}"
            )
    # And the per-morsel sums are exact: survivors account for every
    # qualifying row.
    surviving = sum(
        int(mask[lo:hi].sum())
        for i, (lo, hi) in enumerate(
            morsel_ranges(table.num_rows, morsel_rows)
        )
        if keep[i]
    )
    assert surviving == int(mask.sum())


# ---------------------------------------------------------------------------
# Engine-level: bit-identity, pruning telemetry, fast lane, deadline
# ---------------------------------------------------------------------------


def parallel_config(**overrides) -> EngineConfig:
    defaults = dict(
        vector_size=64,
        morsel_rows=128,
        parallel_threshold_rows=1,
        max_scan_threads=4,
    )
    defaults.update(overrides)
    return EngineConfig(**defaults)


def make_parallel_engine(table: Table, **overrides) -> H2OEngine:
    engine = H2OEngine(table, parallel_config(**overrides))
    # The container may expose a single core; inject a wider pool so
    # real helper threads run regardless of the host.
    engine.executor.scan_pool = ScanPool(max_threads=4)
    return engine


MIXED_SQL = [
    "SELECT sum(a1 + a2) FROM r WHERE a3 > {t}",
    "SELECT count(*) FROM r WHERE a4 < {t}",
    "SELECT min(a5), max(a6) FROM r WHERE a7 > {t} AND a5 < 900000000",
    "SELECT avg(a2 - a8) FROM r WHERE a1 > {t}",
    "SELECT a1, a2 FROM r WHERE a3 > 900000000",
    "SELECT sum(a3) FROM r",
]


class TestEngineParallel:
    def test_parallel_answers_bit_identical_to_serial(self):
        parallel = make_parallel_engine(generate_table("r", 8, 4096, rng=21))
        serial = H2OEngine(
            generate_table("r", 8, 4096, rng=21),
            EngineConfig(parallel_scans=False, zone_maps=False),
        )
        saw_parallel = False
        for repeat in range(2):  # second pass rides the fast lane
            for i, template in enumerate(MIXED_SQL):
                sql = template.format(t=(i - 3) * 100_000_000)
                got = parallel.execute(sql)
                want = serial.execute(sql)
                assert np.array_equal(
                    got.result.data, want.result.data, equal_nan=True
                ), f"parallel diverged on {sql!r}"
                saw_parallel = saw_parallel or got.parallel_scan
                if repeat:
                    assert got.plan_cache_hit or got.adaptation_ran is not None
        assert saw_parallel, "no query ever ran morsel-parallel"

    def test_selective_query_prunes_most_morsels(self):
        # Clustered data: a1 is sorted, so a narrow range lives in few
        # morsels — the zone-map sweet spot the acceptance bar targets.
        num_rows = 8192
        rng = np.random.default_rng(5)
        columns = {
            "a1": np.arange(num_rows, dtype=np.int64),
            "a2": rng.integers(-(10**9), 10**9, num_rows, dtype=np.int64),
        }
        table = Table.from_columns(
            "r", Schema.from_names(("a1", "a2")), columns, "column"
        )
        engine = make_parallel_engine(table)
        # < 5% qualifying: rows [0, 256) of 8192.
        report = engine.execute("SELECT sum(a2) FROM r WHERE a1 < 256")
        assert report.result.scalars() == (
            float(columns["a2"][:256].sum()),
        )
        assert report.morsels_total == num_morsels_for(num_rows, 128)
        assert report.morsels_pruned / report.morsels_total >= 0.8, (
            f"only pruned {report.morsels_pruned}/{report.morsels_total}"
        )

    def test_fast_lane_reprunes_with_fresh_literals(self):
        num_rows = 4096
        columns = {
            "a1": np.arange(num_rows, dtype=np.int64),
            "a2": np.arange(num_rows, dtype=np.int64) * 3,
        }
        table = Table.from_columns(
            "r", Schema.from_names(("a1", "a2")), columns, "column"
        )
        engine = make_parallel_engine(table)
        first = engine.execute("SELECT sum(a2) FROM r WHERE a1 < 128")
        assert first.morsels_pruned > 0
        # Same shape, new literal: the cached kernel must re-consult the
        # zone maps for *this* literal, not replay the old keep mask.
        wide = engine.execute("SELECT sum(a2) FROM r WHERE a1 < 4096")
        assert wide.plan_cache_hit
        assert wide.morsels_pruned == 0
        assert wide.result.scalars() == (float(columns["a2"].sum()),)
        # (The wide query's selectivity drifts past the fast-lane band,
        # so this repeat may legitimately re-plan; what matters is that
        # pruning again reflects the narrow literal.)
        narrow = engine.execute("SELECT sum(a2) FROM r WHERE a1 < 128")
        assert narrow.morsels_pruned == first.morsels_pruned
        assert narrow.result.scalars() == (
            float(columns["a2"][:128].sum()),
        )

    def test_projection_results_identical_and_in_row_order(self):
        parallel = make_parallel_engine(generate_table("r", 6, 3000, rng=9))
        serial = H2OEngine(
            generate_table("r", 6, 3000, rng=9),
            EngineConfig(parallel_scans=False, zone_maps=False),
        )
        sql = "SELECT a1, a2 FROM r WHERE a3 > 0"
        got = parallel.execute(sql)
        want = serial.execute(sql)
        assert np.array_equal(got.result.data, want.result.data), (
            "parallel projection lost row order or rows"
        )

    def test_morsel_deadline_aborts_once_across_threads(self):
        engine = make_parallel_engine(generate_table("r", 4, 512, rng=1))
        check = engine._morsel_deadline(time.monotonic() - 1.0)
        assert check is not None
        failures = []

        def worker() -> None:
            try:
                check()
            except QueryTimeoutError:
                failures.append(1)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        assert len(failures) == 8, "expiry must raise in every thread"
        assert engine.deadline_aborts == 1, (
            "the once-latch must count one abort per query, not per thread"
        )
        assert engine._morsel_deadline(None) is None


# ---------------------------------------------------------------------------
# Stress: scan pool vs service workers vs background adaptation
# ---------------------------------------------------------------------------


@pytest.mark.parallel_stress
def test_parallel_scans_race_service_and_appends():
    """Morsel helpers, service workers, background adaptation, and
    appends all race; every answer must stay consistent and the pool
    budget must return to zero."""
    from repro import H2OService

    table = generate_table("r", 8, 4096, rng=31)
    base_rows = table.num_rows
    batch, num_batches = 128, 12
    valid_counts = {base_rows + k * batch for k in range(num_batches + 1)}

    service = H2OService(
        config=parallel_config(adaptation_mode="background"),
        num_workers=4,
        max_pending=4096,
    )
    service.register(table)
    engine = service.system.engine_for("r")
    pool = ScanPool(max_threads=4)
    engine.executor.scan_pool = pool
    errors: list = []
    stop = threading.Event()
    observed: list = []

    def writer() -> None:
        rng = np.random.default_rng(7)
        try:
            for _ in range(num_batches):
                table.append_rows(
                    {
                        name: rng.integers(
                            -(10**9), 10**9, size=batch, dtype=np.int64
                        )
                        for name in table.schema.names
                    }
                )
                seen = len(observed)
                try:
                    wait_until(
                        lambda: len(observed) > seen or stop.is_set(),
                        timeout=10.0,
                        interval=0.001,
                        message="a reader observation between appends",
                    )
                except AssertionError:
                    pass
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)
        finally:
            stop.set()

    def reader(worker_id: int) -> None:
        session = service.session(f"reader-{worker_id}", timeout=120.0)
        try:
            i = 0
            while not stop.is_set():
                i += 1
                # Hot shape drives background adaptation; the count
                # probe checks snapshot consistency under appends.
                report = session.execute(
                    "SELECT count(*), sum(a1 - a1) FROM r"
                )
                count, zero = report.result.scalars()
                assert zero == 0.0
                observed.append(int(count))
                session.execute(
                    f"SELECT sum(a1 + a2 + a3) FROM r "
                    f"WHERE a4 > {(i % 16 - 8) * 10**8}"
                )
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    readers = [
        threading.Thread(target=reader, args=(i,)) for i in range(4)
    ]
    writer_thread = threading.Thread(target=writer)
    for thread in readers:
        thread.start()
    writer_thread.start()
    writer_thread.join(300.0)
    for thread in readers:
        thread.join(300.0)
    try:
        assert not errors, f"race failed: {errors[0]!r}"
        assert observed, "readers never completed a query"
        torn = [c for c in observed if c not in valid_counts]
        assert not torn, f"torn counts under parallel scans: {sorted(set(torn))}"
        snap = service.stats.snapshot()
        assert snap["failed"] == 0
        assert snap["morsels_total"] > 0, "morsel path never engaged"
        wait_until(
            lambda: pool.snapshot()["reserved"] == 0,
            timeout=30.0,
            message="scan-pool budget draining to zero",
        )
    finally:
        service.close()
