"""The tenth differential-oracle path and its restart-recovery story.

- **20-sequence smoke** — seeded random workloads through
  ``adaptive-clustered-encoded``: clustering may permute row order and
  dictionary/bit-packed replicas may materialize mid-sequence, yet
  aggregations stay bit-identical to the row reference, projections stay
  multiset-identical, zone maps recompute exactly, and the switch
  ledger balances.
- **restart recovery** — a :class:`DurableStore` with both knobs on
  clusters and encodes, checkpoints, and is reopened: the physical row
  permutation, the cluster telemetry, and the encoded replica (same
  codec, same signature) must all survive, and probe queries must
  answer bit-identically across the restart.
- The multiset comparator itself is exercised on adversarial payloads
  (NaN, ``-0.0``) so the tenth path's weaker-ordering compare is known
  to stay bit-exact in every other respect.
"""

import numpy as np
import pytest

from repro.config import EngineConfig, GatewayConfig
from repro.execution.result import QueryResult
from repro.gateway.persist import DurableStore
from repro.storage.generator import shuffle_columns
from repro.storage.layout import LayoutKind
from repro.testkit.generate import random_case
from repro.testkit.oracle import (
    CLEAN_MODES,
    DifferentialOracle,
    results_multiset_identical,
)

pytestmark = pytest.mark.oracle

SEED_CHUNKS = [range(0, 5), range(5, 10), range(10, 15), range(15, 20)]


def test_clustered_encoded_is_a_clean_mode():
    assert "adaptive-clustered-encoded" in CLEAN_MODES
    assert len(CLEAN_MODES) == 9


@pytest.mark.parametrize("seeds", SEED_CHUNKS, ids=lambda r: f"seeds{r.start}-{r.stop - 1}")
def test_clustered_encoded_smoke(seeds):
    oracle = DifferentialOracle(with_faults=False)
    for seed in seeds:
        spec = random_case(seed)
        expected = oracle.reference_results(spec)
        oracle._run_adaptive_clustered_encoded(spec, expected)


def _result(columns, rows):
    return QueryResult(
        column_names=tuple(columns),
        data=np.asarray(rows, dtype=np.float64),
    )


def test_multiset_compare_is_order_insensitive_but_bit_exact():
    a = _result(("x", "y"), [[1.0, -0.0], [np.nan, 2.0]])
    b = _result(("x", "y"), [[np.nan, 2.0], [1.0, -0.0]])
    assert results_multiset_identical(a, b)
    # -0.0 vs +0.0 differ in bits: the comparator must notice.
    c = _result(("x", "y"), [[np.nan, 2.0], [1.0, 0.0]])
    assert not results_multiset_identical(a, c)
    # Same multiset of values in the wrong columns is not equal.
    d = _result(("x", "y"), [[-0.0, 1.0], [2.0, np.nan]])
    assert not results_multiset_identical(a, d)
    assert not results_multiset_identical(
        a, _result(("x", "z"), [[1.0, -0.0], [np.nan, 2.0]])
    )


# Restart recovery -----------------------------------------------------------

ROWS = 8_000
SELECTIVE_SQL = f"SELECT sum(a3), count(*) FROM r WHERE a1 < {ROWS // 50}"
EQUALITY_SQL = "SELECT count(*) FROM r WHERE a2 = 7"

STORE_CONFIG = EngineConfig(
    window_size=4,
    min_window=2,
    max_window=12,
    amortization_threshold=0.1,
    adaptive_clustering=True,
    encoded_layouts=True,
    cluster_rows_min=256,
    encoding_min_rows=256,
    vector_size=512,
    morsel_rows=512,
)


def _open_store(data_dir) -> DurableStore:
    return DurableStore(
        data_dir,
        engine_config=STORE_CONFIG,
        gateway_config=GatewayConfig(
            wal_enabled=True,
            wal_fsync=False,
            snapshot_every_records=0,  # manual checkpoint only
        ),
        num_workers=2,
        default_timeout=60.0,
    )


def _encoded_layouts(engine):
    return [
        layout
        for layout in engine.table.layouts
        if layout.kind is LayoutKind.ENCODED
    ]


def test_restart_recovers_permutation_and_encoding(tmp_path):
    rng = np.random.default_rng(23)
    columns = shuffle_columns(
        {
            "a1": np.arange(ROWS, dtype=np.int64),
            "a2": rng.integers(0, 50, ROWS, dtype=np.int64),
            "a3": rng.integers(-1000, 1000, ROWS, dtype=np.int64),
        },
        rng,
    )
    store = _open_store(tmp_path)
    try:
        store.create_table(
            "r", [("a1", "int64"), ("a2", "int64"), ("a3", "int64")], columns
        )
        engine = store.system.engine_for("r")
        for _ in range(25):
            if engine.table.cluster_key == "a1" and _encoded_layouts(engine):
                break
            store.execute(SELECTIVE_SQL)
            store.execute(EQUALITY_SQL)
        assert engine.table.cluster_key == "a1"
        encoded_before = _encoded_layouts(engine)
        assert encoded_before, "encoded replica never materialized"
        signatures_before = sorted(
            (layout.attrs, layout.encoding_signature())
            for layout in encoded_before
        )
        clustered_rows_before = engine.table.clustered_rows
        a1_before = engine.table.column("a1").copy()
        answers_before = (
            store.execute(SELECTIVE_SQL).result.data.tobytes(),
            store.execute(EQUALITY_SQL).result.data.tobytes(),
        )
        store.checkpoint()
    finally:
        store.close(checkpoint=True)

    reopened = _open_store(tmp_path)
    try:
        engine = reopened.system.engine_for("r")
        # The physical permutation is baked into the persisted columns.
        assert np.array_equal(engine.table.column("a1"), a1_before)
        assert engine.table.cluster_key == "a1"
        assert engine.table.clustered_rows == clustered_rows_before
        # The encoded replica was rebuilt deterministically (same codec,
        # same burned-in signature => compiled kernels are reusable).
        signatures_after = sorted(
            (layout.attrs, layout.encoding_signature())
            for layout in _encoded_layouts(engine)
        )
        assert signatures_after == signatures_before
        answers_after = (
            reopened.execute(SELECTIVE_SQL).result.data.tobytes(),
            reopened.execute(EQUALITY_SQL).result.data.tobytes(),
        )
        assert answers_after == answers_before
    finally:
        reopened.close(checkpoint=False)