"""The advisor (Eq. 1 search), layout manager, and reorganizer."""

import numpy as np
import pytest

from repro.config import EngineConfig
from repro.core.advisor import CandidateLayout, LayoutAdvisor
from repro.core.cost_model import CostModel
from repro.core.layout_manager import LayoutManager
from repro.core.monitor import Monitor
from repro.core.reorganizer import Reorganizer
from repro.errors import ExecutionError
from repro.sql import analyze_query, parse_query
from repro.storage import generate_table
from repro.workloads.microbench import aggregation_query


def repeated_pattern_monitor(table, attrs, count=8, capacity=20):
    monitor = Monitor(table.schema, capacity)
    query = aggregation_query(
        attrs[:-2], where_attrs=attrs[-2:], selectivity=0.4, func="sum"
    )
    for _ in range(count):
        monitor.observe(query)
    return monitor, query


class TestAdvisor:
    @pytest.fixture()
    def table(self):
        return generate_table(
            "r", 30, 30_000, rng=3, initial_layout="column"
        )

    def test_proposes_group_for_hot_pattern(self, table):
        attrs = [f"a{i}" for i in range(1, 13)]
        monitor, _query = repeated_pattern_monitor(table, attrs)
        advisor = LayoutAdvisor(table, CostModel())
        candidates = advisor.propose(monitor)
        assert candidates, "hot repeated pattern should yield a proposal"
        best = candidates[0]
        assert frozenset(attrs) <= best.attr_set or best.attr_set <= frozenset(attrs) or best.covers(frozenset(attrs))
        assert best.frequency >= 2
        assert best.expected_gain > 0

    def test_empty_window_no_proposals(self, table):
        advisor = LayoutAdvisor(table, CostModel())
        assert advisor.propose(Monitor(table.schema, 10)) == []

    def test_adding_group_never_hurts_query_cost(self, table):
        advisor = LayoutAdvisor(table, CostModel())
        info = analyze_query(
            parse_query("SELECT sum(a1 + a2) FROM r WHERE a3 < 0"),
            table.schema,
        )
        base = advisor.query_cost(info, ())
        for group in [
            frozenset({"a1", "a2", "a3"}),
            frozenset({"a9", "a10"}),
            frozenset(table.schema.names),
        ]:
            assert advisor.query_cost(info, [group]) <= base + 1e-12

    def test_existing_exact_group_not_reproposed(self, table):
        attrs = [f"a{i}" for i in range(1, 13)]
        monitor, _ = repeated_pattern_monitor(table, attrs)
        advisor = LayoutAdvisor(table, CostModel())
        first = advisor.propose(monitor)
        assert first
        # Materialize the top proposal, then re-propose.
        manager = LayoutManager(table)
        manager.build_group(first[0].attrs)
        second = advisor.propose(monitor)
        assert all(
            c.attr_set != frozenset(first[0].attrs) for c in second
        )

    def test_candidate_covers(self):
        candidate = CandidateLayout(
            attrs=("a1", "a2", "a3"),
            frequency=3,
            benefit_per_use=1.0,
            build_cost=0.5,
            origin="select",
        )
        assert candidate.covers(frozenset({"a1", "a3"}))
        assert not candidate.covers(frozenset({"a1", "a9"}))
        assert not candidate.covers(frozenset())
        assert candidate.expected_gain == pytest.approx(2.5)


class TestLayoutManager:
    @pytest.fixture()
    def table(self):
        return generate_table("r", 10, 5000, rng=4, initial_layout="column")

    def test_build_group_registers_and_logs(self, table):
        manager = LayoutManager(table)
        group, seconds = manager.build_group(["a1", "a3"], query_index=5)
        assert group in table.layouts
        assert seconds >= 0
        event = manager.creation_log[0]
        assert event.attrs == ("a1", "a3")
        assert event.query_index == 5
        assert event.mode == "offline"
        assert manager.creation_seconds() >= 0

    def test_build_group_idempotent(self, table):
        manager = LayoutManager(table)
        first, _ = manager.build_group(["a1", "a2"])
        second, seconds = manager.build_group(["a2", "a1"])
        assert second is first
        assert seconds == 0.0
        assert len(manager.creation_log) == 1

    def test_usage_tracking(self, table):
        manager = LayoutManager(table)
        layout = table.layouts[0]
        manager.record_use([layout])
        manager.record_use([layout])
        assert manager.uses_of(layout) == 2

    def test_retire_cold_groups(self, table):
        manager = LayoutManager(table)
        manager.build_group(["a1", "a2"])
        manager.build_group(["a3", "a4"])
        base_bytes = sum(
            l.nbytes for l in table.layouts if l.width == 1
        )
        dropped = manager.retire_cold_groups(max_bytes=base_bytes)
        assert len(dropped) == 2
        assert all(l.width == 1 for l in table.layouts)

    def test_register_group_mode_online(self, table):
        manager = LayoutManager(table)
        reorg = Reorganizer()
        outcome = reorg.offline(table, ["a5", "a6"])
        manager.register_group(outcome.group, outcome.seconds)
        assert manager.creation_log[0].mode == "online"


class TestReorganizer:
    @pytest.fixture()
    def table(self):
        return generate_table("r", 12, 20_000, rng=6, initial_layout="row")

    def test_offline_builds_correct_group(self, table):
        reorg = Reorganizer()
        outcome = reorg.offline(table, ["a2", "a7"])
        assert outcome.mode == "offline"
        assert outcome.result is None
        for attr in ("a2", "a7"):
            assert (
                outcome.group.column(attr) == table.column(attr)
            ).all()

    def test_online_result_matches_separate_execution(self, table):
        reorg = Reorganizer()
        attrs = ["a1", "a2", "a3", "a4"]
        query = parse_query(
            "SELECT sum(a1 + a2), max(a3) FROM r WHERE a4 < 0"
        )
        info = analyze_query(query, table.schema)
        outcome = reorg.online(table, attrs, info)
        assert outcome.mode == "online"
        # Group correctness.
        for attr in attrs:
            assert (
                outcome.group.column(attr) == table.column(attr)
            ).all()
        # Query correctness vs numpy ground truth.
        a1 = np.asarray(table.column("a1"))
        a2 = np.asarray(table.column("a2"))
        a3 = np.asarray(table.column("a3"))
        mask = np.asarray(table.column("a4")) < 0
        assert outcome.result.scalars()[0] == pytest.approx(
            float((a1[mask] + a2[mask]).sum())
        )
        assert outcome.result.scalars()[1] == float(a3[mask].max())

    def test_online_projection(self, table):
        reorg = Reorganizer()
        info = analyze_query(
            parse_query("SELECT a1, a2 FROM r WHERE a3 < 0"), table.schema
        )
        outcome = reorg.online(table, ["a1", "a2", "a3"], info)
        mask = np.asarray(table.column("a3")) < 0
        assert (
            outcome.result.column(0) == np.asarray(table.column("a1"))[mask]
        ).all()

    def test_online_with_attrs_outside_group(self, table):
        """A select-clause group can be built while the predicate reads
        attributes that stay in the existing layouts."""
        reorg = Reorganizer()
        info = analyze_query(
            parse_query("SELECT sum(a1 + a2) FROM r WHERE a9 < 0"),
            table.schema,
        )
        outcome = reorg.online(table, ["a1", "a2"], info)
        assert outcome.group.attrs == ("a1", "a2")
        a1 = np.asarray(table.column("a1"))
        a2 = np.asarray(table.column("a2"))
        mask = np.asarray(table.column("a9")) < 0
        assert outcome.result.scalars()[0] == pytest.approx(
            float((a1[mask] + a2[mask]).sum())
        )

    def test_online_no_predicate(self, table):
        reorg = Reorganizer()
        info = analyze_query(
            parse_query("SELECT sum(a1) FROM r"), table.schema
        )
        outcome = reorg.online(table, ["a1", "a2"], info)
        assert outcome.result.scalars()[0] == pytest.approx(
            float(np.asarray(table.column("a1")).sum())
        )

    def test_full_width_online_group_is_row_kind(self, table):
        from repro.storage.layout import LayoutKind

        reorg = Reorganizer()
        info = analyze_query(parse_query("SELECT sum(a1) FROM r"), table.schema)
        outcome = reorg.online(table, list(table.schema.names), info)
        assert outcome.group.kind is LayoutKind.ROW
