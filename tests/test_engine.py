"""The H2O engine end to end: adaptation, reporting, correctness."""

import numpy as np
import pytest

from repro.config import EngineConfig
from repro.core.engine import H2OEngine
from repro.errors import ExecutionError
from repro.sql import parse_query
from repro.storage import generate_table
from repro.workloads.microbench import aggregation_query


def hot_workload(num_attrs=12, repeats=30):
    """One hot pattern repeated — the easiest thing to adapt to."""
    attrs = [f"a{i}" for i in range(1, num_attrs + 1)]
    query = aggregation_query(
        attrs[:-2], where_attrs=attrs[-2:], selectivity=0.4, func="sum"
    )
    return [query] * repeats


class TestBasics:
    def test_executes_sql_strings(self, wide_table):
        engine = H2OEngine(wide_table)
        report = engine.execute("SELECT sum(a1) FROM r WHERE a2 < 0")
        expected = float(
            np.asarray(wide_table.column("a1"))[
                np.asarray(wide_table.column("a2")) < 0
            ].sum()
        )
        assert report.result.scalars()[0] == pytest.approx(expected)
        assert report.seconds > 0
        assert report.index == 0

    def test_rejects_wrong_table(self, wide_table):
        engine = H2OEngine(wide_table)
        with pytest.raises(ExecutionError):
            engine.execute("SELECT x FROM other_table")

    def test_reports_accumulate(self, wide_table):
        engine = H2OEngine(wide_table)
        engine.execute("SELECT a1 FROM r")
        engine.execute("SELECT a2 FROM r")
        assert [r.index for r in engine.reports] == [0, 1]
        assert engine.cumulative_seconds() > 0

    def test_describe_mentions_state(self, wide_table):
        engine = H2OEngine(wide_table)
        engine.execute("SELECT a1 FROM r")
        text = engine.describe()
        assert "window size" in text and "operator cache" in text


class TestAdaptation:
    def test_materializes_layout_for_hot_pattern(self):
        table = generate_table("r", 20, 30_000, rng=2, initial_layout="column")
        engine = H2OEngine(table, EngineConfig(window_size=10))
        for query in hot_workload():
            engine.execute(query)
        assert len(engine.manager.creation_log) >= 1
        built = engine.manager.creation_log[0]
        assert built.mode == "online"
        # After materialization the hot queries run fused on the group.
        strategies = [r.strategy for r in engine.reports[-5:]]
        assert all(s == "fused" for s in strategies)

    def test_reorg_charged_to_triggering_query(self):
        table = generate_table("r", 20, 30_000, rng=2, initial_layout="column")
        engine = H2OEngine(table, EngineConfig(window_size=10))
        for query in hot_workload():
            engine.execute(query)
        builders = [r for r in engine.reports if r.layout_created]
        assert builders
        assert builders[0].reorg_seconds > 0
        assert builders[0].phases["reorg"] == builders[0].reorg_seconds

    def test_results_identical_through_adaptation(self):
        table = generate_table("r", 20, 20_000, rng=2, initial_layout="column")
        engine = H2OEngine(table, EngineConfig(window_size=8))
        queries = hot_workload(repeats=25)
        results = [engine.execute(q).result for q in queries]
        for result in results[1:]:
            assert results[0].allclose(result)

    def test_materialization_never(self):
        table = generate_table("r", 20, 20_000, rng=2, initial_layout="column")
        engine = H2OEngine(
            table, EngineConfig(window_size=8, materialization="never")
        )
        for query in hot_workload(repeats=20):
            engine.execute(query)
        assert len(engine.manager.creation_log) == 0

    def test_materialization_eager(self):
        table = generate_table("r", 20, 20_000, rng=2, initial_layout="column")
        engine = H2OEngine(
            table, EngineConfig(window_size=8, materialization="eager")
        )
        for query in hot_workload(repeats=20):
            engine.execute(query)
        log = engine.manager.creation_log
        assert log and all(event.mode == "offline" for event in log)

    def test_materialization_validation(self):
        import pytest as _pytest
        from repro.errors import AdaptationError

        with _pytest.raises(AdaptationError):
            EngineConfig(materialization="sometimes")

    def test_adaptation_runs_periodically(self, wide_table):
        engine = H2OEngine(wide_table, EngineConfig(window_size=10))
        reports = [
            engine.execute(f"SELECT a{i % 5 + 1} FROM r") for i in range(22)
        ]
        assert any(r.adaptation_ran for r in reports)

    def test_selectivity_feedback_loop(self, wide_table):
        engine = H2OEngine(wide_table)
        engine.execute("SELECT a1 FROM r WHERE a2 < 0")
        key_count = len(engine.selectivity._observed)
        assert key_count == 1
        observed = next(iter(engine.selectivity._observed.values()))
        assert 0.3 < observed < 0.7  # ~half of uniform values are < 0

    def test_window_shrinks_on_shift(self):
        table = generate_table("r", 40, 10_000, rng=3, initial_layout="column")
        engine = H2OEngine(table, EngineConfig(window_size=20))
        for _ in range(12):
            engine.execute("SELECT sum(a1 + a2 + a3) FROM r WHERE a4 < 0")
        before = engine.window.size
        for i in range(12):
            engine.execute(
                f"SELECT sum(a3{i % 3 + 1} + a2{i % 3 + 5}) FROM r"
                if False
                else f"SELECT sum(a{30 + i % 5} + a{25 + i % 4}) FROM r"
            )
        assert engine.window.shrink_events >= 1 or engine.window.size < before

    def test_run_sequence(self, wide_table):
        engine = H2OEngine(wide_table)
        reports = engine.run_sequence(
            ["SELECT a1 FROM r", "SELECT a2 FROM r"]
        )
        assert len(reports) == 2


class TestPhasesAccounting:
    def test_phase_totals_cover_components(self, wide_table):
        engine = H2OEngine(
            wide_table,
            EngineConfig(window_size=5, min_window=5, max_window=20),
        )
        for i in range(12):
            engine.execute(f"SELECT sum(a{i % 3 + 1}) FROM r WHERE a5 < 0")
        totals = engine.phase_totals()
        assert "plan" in totals and "execute" in totals
        assert "adapt" in totals  # at least one adaptation ran
        assert engine.cumulative_seconds() >= totals["execute"]


class TestSeedAdaptationRobustness:
    """seed_adaptation_state must never leave the window pinned open
    (1 << 30) — not for malformed persisted state, not for a non-H2O
    exception escaping a warmup query."""

    def test_missing_window_size_keeps_current(self, wide_table):
        engine = H2OEngine(wide_table, EngineConfig(window_size=10))
        engine.seed_adaptation_state({"warmup_sql": ["SELECT a1 FROM r"]})
        assert engine.window.size == 10

    def test_garbage_window_size_keeps_current(self, wide_table):
        engine = H2OEngine(wide_table, EngineConfig(window_size=10))
        engine.seed_adaptation_state(
            {"window_size": "garbage", "queries_seen": None}
        )
        assert engine.window.size == 10
        assert engine.monitor.queries_seen == 0

    def test_warmup_crash_restores_window(self, wide_table, monkeypatch):
        engine = H2OEngine(wide_table, EngineConfig(window_size=10))

        def boom(query):
            raise RuntimeError("not an H2OError")

        monkeypatch.setattr(engine, "execute", boom)
        with pytest.raises(RuntimeError):
            engine.seed_adaptation_state(
                {"window_size": 7, "warmup_sql": ["SELECT a1 FROM r"]}
            )
        assert engine.window.size == 7  # restored despite the crash
        monkeypatch.undo()
        # the engine still executes and observes normally afterwards
        engine.execute("SELECT a1 FROM r")
        assert engine.monitor.queries_seen == 1

    def test_unparseable_window_sql_is_skipped(self, wide_table):
        engine = H2OEngine(wide_table, EngineConfig(window_size=10))
        engine.seed_adaptation_state(
            {
                "window_size": 8,
                "window_sql": ["SELECT a1 FROM r", "NOT SQL AT ALL"],
                "queries_seen": 2,
            }
        )
        assert engine.window.size == 8
        assert engine.monitor.queries_seen == 2
