"""Workload generators: templates, selectivity targeting, sequences."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.sql import analyze_query
from repro.storage import generate_table
from repro.workloads import (
    aggregation_query,
    arithmetic_query,
    fig7_sequence,
    fig9_sequence,
    projection_query,
    projectivity_sweep,
    selectivity_sweep,
    skyserver_workload,
    threshold_for_selectivity,
)
from repro.workloads.skyserver import photoobj_schema


class TestTemplates:
    def test_projection(self):
        query = projection_query(["a1", "a2"])
        assert not query.is_aggregation
        assert query.where is None

    def test_aggregation_funcs(self):
        for func in ("max", "min", "sum", "avg"):
            query = aggregation_query(["a1"], func=func)
            assert query.is_aggregation
        with pytest.raises(WorkloadError):
            aggregation_query(["a1"], func="median")

    def test_arithmetic_wraps_in_sum(self):
        query = arithmetic_query(["a1", "a2", "a3"])
        assert query.is_aggregation
        bare = arithmetic_query(["a1", "a2"], aggregate=False)
        assert not bare.is_aggregation

    def test_empty_attrs_rejected(self):
        for factory in (projection_query, aggregation_query, arithmetic_query):
            with pytest.raises(WorkloadError):
                factory([])

    def test_multi_conjunct_selectivity_split(self):
        query = aggregation_query(
            ["a1", "a2"], where_attrs=["a3", "a4"], selectivity=0.25
        )
        assert len(query.predicates) == 2


class TestSelectivityAccuracy:
    """Thresholds must hit requested selectivities on uniform data."""

    @pytest.mark.parametrize("target", [0.01, 0.1, 0.4, 0.9])
    def test_single_predicate(self, target):
        table = generate_table("r", 2, 50_000, rng=17)
        query = projection_query(
            ["a1"], where_attrs=["a2"], selectivity=target
        )
        threshold = query.predicates[0].right.value
        observed = float(
            (np.asarray(table.column("a2")) < threshold).mean()
        )
        assert observed == pytest.approx(target, abs=0.02)

    def test_conjunction_total_selectivity(self):
        table = generate_table("r", 4, 80_000, rng=18)
        query = aggregation_query(
            ["a1"],
            where_attrs=["a2", "a3", "a4"],
            selectivity=0.4,
        )
        columns = {
            n: np.asarray(table.column(n)) for n in ("a2", "a3", "a4")
        }
        mask = np.ones(table.num_rows, dtype=bool)
        for conjunct in query.predicates:
            attr = next(iter(conjunct.columns()))
            mask &= columns[attr] < conjunct.right.value
        assert float(mask.mean()) == pytest.approx(0.4, abs=0.03)

    def test_threshold_bounds(self):
        assert threshold_for_selectivity(0.0) == -(10**9)
        assert threshold_for_selectivity(1.0) == 10**9
        with pytest.raises(WorkloadError):
            threshold_for_selectivity(1.5)


class TestSweeps:
    def test_projectivity_sweep_counts(self):
        queries = projectivity_sweep(100, [0.02, 0.5, 1.0])
        widths = [len(q.select_attributes) for q in queries]
        assert widths == [2, 50, 100]

    def test_projectivity_sweep_where_same_attrs(self):
        (query,) = projectivity_sweep(
            50, [0.2], selectivity=0.4, where_same_attrs=True
        )
        assert query.where_attributes == query.select_attributes

    def test_selectivity_sweep_fixed_attrs(self):
        queries = selectivity_sweep(50, 10, [0.01, 0.5])
        for query in queries:
            assert len(query.attributes) == 10
            assert len(query.where_attributes) == 1


class TestSequences:
    def test_fig7_deterministic(self):
        first = fig7_sequence(num_attrs=40, num_rows=100, rng=5)
        second = fig7_sequence(num_attrs=40, num_rows=100, rng=5)
        assert [q.to_sql() for q in first.queries] == [
            q.to_sql() for q in second.queries
        ]

    def test_fig7_has_recurring_patterns(self):
        workload = fig7_sequence(num_attrs=60, num_rows=100, rng=5)
        histogram = workload.pattern_histogram()
        assert histogram[0][1] >= 5  # hottest pattern recurs

    def test_fig7_z_range(self):
        workload = fig7_sequence(
            num_attrs=60, num_rows=100, z_low=10, z_high=30, rng=5
        )
        for query in workload.queries:
            assert 10 <= len(query.attributes) <= 30

    def test_fig7_rejects_bad_z(self):
        with pytest.raises(WorkloadError):
            fig7_sequence(num_attrs=20, z_low=10, z_high=30)

    def test_fig9_shift_structure(self):
        workload = fig9_sequence(num_attrs=60, num_rows=100, rng=5)
        phase1 = set().union(
            *(q.attributes for q in workload.queries[:15])
        )
        phase2 = set().union(
            *(q.attributes for q in workload.queries[15:])
        )
        assert not phase1 & phase2  # disjoint focus sets
        assert workload.table_spec.initial_layout == "row"

    def test_fig9_rejects_narrow_schema(self):
        with pytest.raises(WorkloadError):
            fig9_sequence(num_attrs=30, focus_width=20)

    def test_workload_stats(self):
        workload = fig7_sequence(num_attrs=40, num_rows=100, rng=5)
        touched, total = workload.attribute_footprint()
        assert 0 < touched <= total == 40
        assert workload.mean_attrs_per_query() > 0
        assert len(workload) == len(workload.queries)


class TestSkyServer:
    def test_schema_is_photoobj_like(self):
        schema = photoobj_schema()
        assert schema.width == 128
        assert "psfMag_r" in schema
        assert "ra" in schema and "dec" in schema

    def test_workload_valid_against_schema(self):
        workload = skyserver_workload(num_rows=100, num_queries=40, rng=3)
        schema = photoobj_schema()
        for query in workload.queries:
            analyze_query(query, schema)  # raises on invalid

    def test_zipf_skew(self):
        workload = skyserver_workload(num_rows=100, num_queries=200, rng=3)
        histogram = workload.pattern_histogram()
        # hottest template family dominates the tail
        assert histogram[0][1] >= 4 * histogram[-1][1]

    def test_deterministic(self):
        first = skyserver_workload(num_rows=100, num_queries=30, rng=9)
        second = skyserver_workload(num_rows=100, num_queries=30, rng=9)
        assert [q.to_sql() for q in first.queries] == [
            q.to_sql() for q in second.queries
        ]

    def test_table_spec_row_major(self):
        workload = skyserver_workload(num_rows=50, num_queries=5, rng=1)
        table = workload.make_table(rng=1)
        assert table.num_rows == 50
        assert table.schema.width == 128
