"""Query objects, the fluent builder, and semantic analysis."""

import pytest

from repro.errors import AnalysisError
from repro.sql import (
    DataType,
    QueryBuilder,
    analyze_query,
    col,
    parse_query,
)
from repro.storage import wide_schema
from repro.storage.schema import Attribute, Schema


class TestQuery:
    def test_clause_attribute_sets(self):
        query = parse_query("SELECT sum(a1 + a2) FROM r WHERE a3 < 1")
        assert query.select_attributes == frozenset({"a1", "a2"})
        assert query.where_attributes == frozenset({"a3"})
        assert query.attributes == frozenset({"a1", "a2", "a3"})

    def test_is_aggregation(self):
        assert parse_query("SELECT sum(a) FROM r").is_aggregation
        assert not parse_query("SELECT a FROM r").is_aggregation

    def test_rejects_mixed_select(self):
        with pytest.raises(AnalysisError):
            parse_query("SELECT sum(a), b FROM r")

    def test_rejects_empty_select(self):
        with pytest.raises(AnalysisError):
            QueryBuilder("r").build()

    def test_signature_equal_for_same_shape(self):
        first = parse_query("SELECT sum(a) FROM r WHERE b < 5")
        second = parse_query("SELECT sum(a) FROM r WHERE b < 5")
        assert first.signature() == second.signature()

    def test_signature_differs_on_structure(self):
        first = parse_query("SELECT sum(a) FROM r")
        second = parse_query("SELECT max(a) FROM r")
        assert first.signature() != second.signature()

    def test_signature_all_attrs(self):
        query = parse_query("SELECT a FROM r WHERE b < 1")
        assert query.signature().all_attrs == frozenset({"a", "b"})

    def test_predicates_flatten(self):
        query = parse_query(
            "SELECT a FROM r WHERE b < 1 AND c < 2 AND d < 3"
        )
        assert len(query.predicates) == 3


class TestBuilder:
    def test_equivalent_to_parsed(self):
        built = (
            QueryBuilder("r")
            .select_sum(col("a") + col("b"))
            .where(col("c") < 10)
            .build()
        )
        parsed = parse_query("SELECT sum(a + b) FROM r WHERE c < 10")
        assert built.select == parsed.select
        assert built.where == parsed.where

    def test_select_columns(self):
        query = QueryBuilder("r").select_columns(["x", "y"]).build()
        assert [o.name for o in query.select] == ["x", "y"]

    def test_all_aggregate_helpers(self):
        query = (
            QueryBuilder("r")
            .select_sum("a")
            .select_min("a")
            .select_max("a")
            .select_avg("a")
            .select_count()
            .build()
        )
        assert len(query.select) == 5
        assert query.is_aggregation

    def test_where_conjoins(self):
        query = (
            QueryBuilder("r")
            .select("a")
            .where(col("b") < 1)
            .where(col("c") > 2)
            .build()
        )
        assert len(query.predicates) == 2

    def test_alias(self):
        query = QueryBuilder("r").select(col("a"), alias="x").build()
        assert query.select[0].name == "x"


class TestAnalyzer:
    def test_resolves_in_schema_order(self, small_schema):
        query = parse_query("SELECT a5, a1 FROM r WHERE a3 < 1")
        info = analyze_query(query, small_schema)
        assert info.select_attrs == ("a1", "a5")
        assert info.all_attrs == ("a1", "a3", "a5")

    def test_unknown_attribute(self, small_schema):
        query = parse_query("SELECT nope FROM r")
        with pytest.raises(AnalysisError, match="nope"):
            analyze_query(query, small_schema)

    def test_output_types_int(self, small_schema):
        query = parse_query("SELECT a1 + a2 FROM r")
        info = analyze_query(query, small_schema)
        assert info.output_types == (DataType.INT64,)

    def test_output_types_promotion(self):
        schema = Schema(
            [Attribute("i", DataType.INT64), Attribute("f", DataType.FLOAT64)]
        )
        query = parse_query("SELECT i + f FROM r")
        info = analyze_query(query, schema)
        assert info.output_types == (DataType.FLOAT64,)

    def test_avg_is_float(self, small_schema):
        query = parse_query("SELECT avg(a1) FROM r")
        info = analyze_query(query, small_schema)
        assert info.output_types == (DataType.FLOAT64,)

    def test_count_is_int(self, small_schema):
        query = parse_query("SELECT count(*) FROM r")
        info = analyze_query(query, small_schema)
        assert info.output_types == (DataType.INT64,)

    def test_flags(self, small_schema):
        info = analyze_query(
            parse_query("SELECT sum(a1) FROM r WHERE a2 < 1"), small_schema
        )
        assert info.is_aggregation and info.has_predicate

    def test_wide_schema_names(self):
        schema = wide_schema(3, prefix="x")
        assert schema.names == ("x1", "x2", "x3")
