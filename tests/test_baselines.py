"""The baseline engines: static row/column, optimal oracle, AutoPart."""

import numpy as np
import pytest

from repro.baselines import (
    AutoPartEngine,
    AutoPartPartitioner,
    ColumnStoreEngine,
    OptimalEngine,
    RowStoreEngine,
)
from repro.errors import ExecutionError, WorkloadError
from repro.sql import parse_query
from repro.storage import generate_table
from repro.storage.layout import LayoutKind


@pytest.fixture()
def table():
    return generate_table("r", 10, 8000, rng=8, initial_layout="column")


QUERIES = [
    "SELECT sum(a1 + a2) FROM r WHERE a3 < 0",
    "SELECT a1, a2 FROM r WHERE a4 > 0",
    "SELECT max(a5), min(a6), count(*) FROM r",
]


class TestStaticEngines:
    def test_row_engine_converts_layout(self, table):
        engine = RowStoreEngine(table)
        assert len(engine.table.layouts) == 1
        assert engine.table.layouts[0].kind is LayoutKind.ROW

    def test_row_engine_keeps_row_table(self):
        row = generate_table("r", 6, 1000, rng=1, initial_layout="row")
        engine = RowStoreEngine(row)
        assert engine.table is row

    def test_column_engine_keeps_column_table(self, table):
        engine = ColumnStoreEngine(table)
        assert engine.table is table

    def test_column_engine_decomposes_row_table(self):
        row = generate_table("r", 6, 1000, rng=1, initial_layout="row")
        engine = ColumnStoreEngine(row)
        assert all(l.kind is LayoutKind.COLUMN for l in engine.table.layouts)

    def test_all_engines_agree(self, table):
        engines = [
            RowStoreEngine(generate_table("r", 10, 8000, rng=8)),
            ColumnStoreEngine(generate_table("r", 10, 8000, rng=8)),
            OptimalEngine(generate_table("r", 10, 8000, rng=8)),
        ]
        for sql in QUERIES:
            results = [engine.execute(sql).result for engine in engines]
            for other in results[1:]:
                assert results[0].allclose(other), sql

    def test_strategies_match_design(self, table):
        col = ColumnStoreEngine(generate_table("r", 10, 1000, rng=8))
        row = RowStoreEngine(generate_table("r", 10, 1000, rng=8))
        assert col.execute(QUERIES[0]).strategy == "late"
        assert row.execute(QUERIES[0]).strategy == "fused"

    def test_wrong_table_rejected(self, table):
        engine = ColumnStoreEngine(table)
        with pytest.raises(ExecutionError):
            engine.execute("SELECT x FROM other")

    def test_cumulative_seconds(self, table):
        engine = ColumnStoreEngine(table)
        for sql in QUERIES:
            engine.execute(sql)
        assert engine.cumulative_seconds() == pytest.approx(
            sum(r.seconds for r in engine.reports)
        )


class TestOptimal:
    def test_reuses_perfect_groups(self, table):
        engine = OptimalEngine(table)
        engine.execute(QUERIES[0])
        engine.execute(QUERIES[0])
        assert len(engine._groups) == 1

    def test_distinct_patterns_distinct_groups(self, table):
        engine = OptimalEngine(table)
        engine.execute("SELECT a1 FROM r")
        engine.execute("SELECT a2 FROM r")
        assert len(engine._groups) == 2


class TestAutoPart:
    def workload(self):
        return [
            parse_query("SELECT a1, a2 FROM r WHERE a3 < 0"),
            parse_query("SELECT a1, a2 FROM r WHERE a3 < 5"),
            parse_query("SELECT sum(a4 + a5) FROM r"),
            parse_query("SELECT sum(a4 + a5) FROM r WHERE a3 < 0"),
        ]

    def test_atomic_fragments_group_by_signature(self, table):
        partitioner = AutoPartPartitioner(table.schema)
        fragments = partitioner.atomic_fragments(self.workload())
        # a1, a2 always travel together; a4, a5 likewise.
        assert frozenset({"a1", "a2"}) in fragments
        assert frozenset({"a4", "a5"}) in fragments
        # untouched attributes share the "never accessed" signature
        assert frozenset({"a6", "a7", "a8", "a9", "a10"}) in fragments

    def test_fit_covers_schema(self, table):
        partitioner = AutoPartPartitioner(table.schema)
        partitioning = partitioner.fit(self.workload(), table.num_rows)
        covered = set()
        for group in partitioning.groups:
            covered |= group
        assert covered == set(table.schema.names)

    def test_fit_rejects_empty_workload(self, table):
        with pytest.raises(WorkloadError):
            AutoPartPartitioner(table.schema).fit([], table.num_rows)

    def test_engine_prepare_and_run(self, table):
        workload = self.workload()
        engine = AutoPartEngine(table, workload)
        partitioning = engine.prepare()
        assert engine.layout_creation_seconds > 0
        assert partitioning is engine.partitioning
        # Old single-column layouts were replaced by the fragments.
        assert all(
            layout.width >= 1 for layout in engine.table.layouts
        )
        reference = ColumnStoreEngine(
            generate_table("r", 10, 8000, rng=8)
        )
        for query in workload:
            mine = engine.execute(query).result
            theirs = reference.execute(query).result
            assert mine.allclose(theirs)

    def test_engine_accepts_sql_strings(self, table):
        engine = AutoPartEngine(table, ["SELECT a1 FROM r"])
        assert engine.workload[0].table == "r"
