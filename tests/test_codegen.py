"""Code generation: templates, parameterization, cache, compilation."""

import numpy as np
import pytest

from repro.codegen import OperatorCache, compile_kernel, operator_source
from repro.codegen.exprc import (
    Binding,
    ExprCompiler,
    ParamRegistry,
    masked_sql,
)
from repro.codegen.generator import collect_literals, operator_key
from repro.codegen.source import SourceBuilder
from repro.config import EngineConfig
from repro.errors import CodegenError
from repro.execution import enumerate_plans
from repro.execution.strategies import AccessPlan, ExecutionStrategy
from repro.sql import analyze_query, col, parse_query
from repro.storage import generate_table
from repro.storage.stitcher import stitch_group


class TestSourceBuilder:
    def test_indentation(self):
        sb = SourceBuilder()
        sb.line("def f():")
        with sb.indented():
            sb.line("return 1")
        assert sb.render() == "def f():\n    return 1"

    def test_block(self):
        sb = SourceBuilder()
        with sb.block("if x:"):
            sb.line("pass")
        assert "if x:\n    pass" == sb.render()

    def test_fresh_names_unique(self):
        sb = SourceBuilder()
        names = {sb.fresh("t") for _ in range(10)}
        assert len(names) == 10


class TestMaskedSql:
    def test_masks_literals(self):
        expr = (col("a") + 5) * 2
        assert masked_sql(expr) == "((a + ?) * ?)"

    def test_predicate(self):
        assert masked_sql(col("a") < 7) == "a < ?"

    def test_structural_identity_across_constants(self):
        first = parse_query("SELECT a FROM r WHERE b < 1").where
        second = parse_query("SELECT a FROM r WHERE b < 999").where
        assert masked_sql(first) == masked_sql(second)


class TestExprCompiler:
    def _compile(self, expr, fused=True, **bindings):
        sb = SourceBuilder()
        params = ParamRegistry()
        binding_map = {
            name: Binding(name, np.dtype(np.int64)) for name in bindings
        }
        compiler = ExprCompiler(binding_map, params, fused=fused)
        with sb.block("def kernel(a, b, params):"):
            operand = compiler.compile_value(expr, sb)
            sb.line(f"return {operand.source}")
        namespace = {"np": np}
        exec(sb.render(), namespace)
        return namespace["kernel"], params

    def test_emits_runnable_source(self):
        kernel, params = self._compile(col("a") + col("b") * 2, a=1, b=1)
        a = np.array([1, 2])
        b = np.array([10, 20])
        out = kernel(a, b, params.values)
        assert list(out) == [21, 42]

    def test_parameter_lifting(self):
        _kernel, params = self._compile(col("a") + 5, a=1)
        assert params.values == [5]

    def test_fused_reuses_temporaries(self):
        sb = SourceBuilder()
        params = ParamRegistry()
        bindings = {
            n: Binding(n, np.dtype(np.int64)) for n in ("a", "b", "c")
        }
        compiler = ExprCompiler(bindings, params, fused=True)
        compiler.compile_value((col("a") * col("b")) - col("c"), sb)
        assert "out=" in sb.render()

    def test_late_never_reuses(self):
        sb = SourceBuilder()
        params = ParamRegistry()
        bindings = {
            n: Binding(n, np.dtype(np.int64)) for n in ("a", "b", "c")
        }
        compiler = ExprCompiler(bindings, params, fused=False)
        compiler.compile_value((col("a") * col("b")) - col("c"), sb)
        assert "out=" not in sb.render()

    def test_rowsum_fusion_for_add_chains(self):
        sb = SourceBuilder()
        params = ParamRegistry()
        bindings = {
            f"a{i}": Binding(
                f"blk[:, {i}]", np.dtype(np.int64), base="blk", position=i
            )
            for i in range(4)
        }
        compiler = ExprCompiler(bindings, params, fused=True)
        chain = col("a0") + col("a1") + col("a2") + col("a3")
        compiler.compile_value(chain, sb)
        assert "einsum" in sb.render()

    def test_rowsum_requires_same_base(self):
        sb = SourceBuilder()
        params = ParamRegistry()
        bindings = {
            "a": Binding("x[:, 0]", np.dtype(np.int64), base="x", position=0),
            "b": Binding("y[:, 0]", np.dtype(np.int64), base="y", position=0),
            "c": Binding("x[:, 1]", np.dtype(np.int64), base="x", position=1),
        }
        compiler = ExprCompiler(bindings, params, fused=True)
        compiler.compile_value(col("a") + col("b") + col("c"), sb)
        assert "einsum" not in sb.render()

    def test_unknown_binding(self):
        with pytest.raises(CodegenError):
            self._compile(col("zzz"), a=1)

    def test_param_registry_validates_order(self):
        registry = ParamRegistry(expected=[1, 2])
        registry.register(1)
        with pytest.raises(CodegenError):
            registry.register(99)

    def test_param_registry_validates_type(self):
        registry = ParamRegistry(expected=[1])
        with pytest.raises(CodegenError):
            registry.register(1.0)  # float vs int


class TestCompile:
    def test_compile_kernel(self):
        fn, filename = compile_kernel(
            "def kernel(bufs, params):\n    return 42"
        )
        assert fn((), ()) == 42
        assert filename.startswith("<h2o-operator-")
        assert hasattr(fn, "__h2o_source__")

    def test_syntax_error_includes_source(self):
        with pytest.raises(CodegenError, match="does not compile"):
            compile_kernel("def kernel(:\n  pass")

    def test_missing_kernel_function(self):
        with pytest.raises(CodegenError, match="defines no"):
            compile_kernel("x = 1")


class TestOperatorCache:
    def test_hit_miss_accounting(self):
        cache = OperatorCache()
        assert cache.lookup("k") is None
        from repro.codegen.cache import CacheEntry

        cache.store("k", CacheEntry(kernel=lambda: 0, source="", filename=""))
        assert cache.lookup("k") is not None
        assert cache.stats() == (1, 1, 1, 0)

    def test_lru_eviction_bound(self):
        from repro.codegen.cache import CacheEntry

        cache = OperatorCache(capacity=2)
        for key in ("a", "b", "c"):
            cache.store(
                key, CacheEntry(kernel=lambda: 0, source="", filename="")
            )
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.lookup("a") is None  # least recently used, evicted
        assert cache.lookup("b") is not None
        # "b" is now most recently used; storing "d" evicts "c".
        cache.store(
            "d", CacheEntry(kernel=lambda: 0, source="", filename="")
        )
        assert cache.lookup("c") is None
        assert cache.lookup("b") is not None
        assert cache.stats()[3] == 2

    def test_disabled_cache_never_hits(self):
        cache = OperatorCache(enabled=False)
        from repro.codegen.cache import CacheEntry

        cache.store("k", CacheEntry(kernel=lambda: 0, source="", filename=""))
        assert cache.lookup("k") is None

    def test_clear(self):
        cache = OperatorCache()
        from repro.codegen.cache import CacheEntry

        cache.store("k", CacheEntry(kernel=lambda: 0, source="", filename=""))
        cache.clear()
        assert len(cache) == 0


@pytest.fixture(scope="module")
def table():
    t = generate_table("r", 10, 1000, rng=9, initial_layout="column")
    group, _ = stitch_group(t.layouts, ("a1", "a2", "a3", "a4"), t.schema)
    t.add_layout(group)
    return t


class TestGeneratorIntegration:
    def test_collect_literals_matches_template_order(self, table):
        for sql in [
            "SELECT sum(a1 + 3) FROM r WHERE a2 < 10 AND a3 > 20",
            "SELECT a1 * 2, a2 + 1 FROM r WHERE a3 < 5",
            "SELECT sum(a1) + 7 FROM r",
        ]:
            info = analyze_query(parse_query(sql), table.schema)
            for plan in enumerate_plans(table, info):
                # operator_source re-validates the canonical order and
                # raises on any divergence.
                source = operator_source(info, plan)
                assert "def kernel" in source

    def test_operator_key_ignores_constants(self, table):
        config = EngineConfig()
        a = analyze_query(
            parse_query("SELECT sum(a1) FROM r WHERE a2 < 1"), table.schema
        )
        b = analyze_query(
            parse_query("SELECT sum(a1) FROM r WHERE a2 < 999"), table.schema
        )
        plan_a = enumerate_plans(table, a)[0]
        plan_b = enumerate_plans(table, b)[0]
        assert operator_key(a, plan_a, config) == operator_key(
            b, plan_b, config
        )

    def test_operator_key_distinguishes_param_types(self, table):
        config = EngineConfig()
        a = analyze_query(
            parse_query("SELECT sum(a1) FROM r WHERE a2 < 1"), table.schema
        )
        b = analyze_query(
            parse_query("SELECT sum(a1) FROM r WHERE a2 < 1.5"), table.schema
        )
        plan_a = enumerate_plans(table, a)[0]
        plan_b = enumerate_plans(table, b)[0]
        assert operator_key(a, plan_a, config) != operator_key(
            b, plan_b, config
        )

    def test_operator_key_distinguishes_layouts(self, table):
        config = EngineConfig()
        info = analyze_query(
            parse_query("SELECT sum(a1) FROM r WHERE a2 < 1"), table.schema
        )
        plans = enumerate_plans(table, info)
        keys = {operator_key(info, plan, config) for plan in plans}
        assert len(keys) == len(plans)

    def test_generated_source_mentions_positions(self, table):
        """The emitted code binds physical column positions as constants
        (the Fig. 5 specialization)."""
        info = analyze_query(
            parse_query("SELECT sum(a2 + a3) FROM r WHERE a1 < 0"),
            table.schema,
        )
        group = table.find_group({"a1", "a2", "a3", "a4"})
        plan = AccessPlan(ExecutionStrategy.FUSED, (group,))
        source = operator_source(info, plan)
        assert "params[0]" in source  # the predicate constant
        assert "[:, 0]" in source  # a1 at position 0 of the group
