"""Shard kill/respawn and shared-memory leak stress (``shard_stress``).

These tests spawn and kill real worker processes, so they live behind
the ``shard_stress`` marker and run in their own CI job (mirroring
``parallel-stress``) under pytest-timeout.  What they pin down:

- a shard SIGKILLed mid-run is respawned by the coordinator's watchdog
  and the in-flight ticket is *requeued* by the service's retry ladder —
  the waiter sees a correct answer, never the death;
- a respawned shard replays its slice (initial registration + every
  append batch) and keeps answering bit-identically;
- no run — including one that killed shards, and one whose whole
  interpreter died mid-use — leaks ``/dev/shm`` segments.
"""

from __future__ import annotations

import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.config import EngineConfig
from repro.core.system import H2OSystem, build_system
from repro.service import H2OService
from repro.sharding import leaked_segments
from repro.storage import generate_table

from tests.conftest import wait_until

pytestmark = pytest.mark.shard_stress


def _identical(a, b):
    return a.data.shape == b.data.shape and np.array_equal(
        np.asarray(a.data, dtype=np.float64),
        np.asarray(b.data, dtype=np.float64),
        equal_nan=True,
    )


@pytest.mark.parametrize("shards", [1, 3, 5])
def test_shard_count_independence_end_to_end(shards):
    """N-shard answers are bit-identical to serial for every N."""
    table = generate_table("t", 6, 4000, rng=21)
    serial = H2OSystem()
    serial.register(table)
    queries = (
        "SELECT sum(a1), count(*) FROM t WHERE a2 > 0",
        "SELECT avg(a3), min(a4), max(a5) FROM t WHERE a1 > -500",
        "SELECT a1, a3 FROM t WHERE a2 > 900",
        "SELECT min(a1), max(a1) FROM t WHERE a1 > 99999",
    )
    with build_system(EngineConfig(shard_count=shards)) as sharded:
        sharded.register(table)
        for sql in queries:
            want = serial.execute(sql).result
            got = sharded.execute(sql)
            assert _identical(got.result, want), sql
            assert got.shards_used == shards
    assert leaked_segments() == ()


def test_killed_shard_respawns_and_requeues_not_surfaces():
    """SIGKILL a shard while queries are in flight: zero failures.

    A concurrent killer thread murders shard processes while the
    service drains a batch of identical queries.  Every waiter must get
    the correct answer — deaths are absorbed by the retryable
    ShardError → requeue → watchdog-respawn ladder, never surfaced.
    """
    service = H2OService(
        config=EngineConfig(shard_count=2, scatter_timeout=10.0),
        num_workers=2,
        max_pending=64,
        default_timeout=120.0,
        max_query_attempts=6,
    )
    try:
        table = generate_table("t", 5, 6000, rng=4)
        service.register(table)
        sql = "SELECT sum(a1 + a2), count(*) FROM t WHERE a3 > 0"
        want = service.execute(sql).result

        stop = threading.Event()
        kills = []

        def killer():
            # Kill alternating shards while the batch drains.
            sid = 0
            while not stop.is_set() and len(kills) < 4:
                shard = service.system._shards[sid % 2]
                if shard.process.is_alive():
                    shard.process.kill()
                    kills.append(shard.index)
                sid += 1
                stop.wait(0.05)

        futures = [service.submit(sql) for _ in range(30)]
        thread = threading.Thread(target=killer)
        thread.start()
        try:
            for future in futures:
                report = future.result(120.0)  # raises on surfaced death
                assert _identical(report.result, want)
        finally:
            stop.set()
            thread.join()
        assert kills, "the killer thread never killed anything"
        wait_until(
            lambda: service.system.alive_shards() == 2,
            timeout=30.0,
            message="watchdog respawning both shards",
        )
        assert service.system.shard_respawns >= 1
        health = service.health()
        assert health.shards_alive == 2
        assert health.shard_respawns >= 1
        # The waiter-facing ledger is clean: nothing failed or timed out.
        stats = service.stats.snapshot()
        assert int(stats["failed"]) == 0
        assert int(stats["timeouts"]) == 0
    finally:
        service.close()
    assert leaked_segments() == ()


def test_respawned_shard_replays_appends():
    """Appends recorded before a kill survive the respawn replay."""
    with build_system(EngineConfig(shard_count=2)) as sharded:
        table = generate_table("t", 4, 2000, rng=8)
        serial = H2OSystem()
        serial.register(table)
        sharded.register(table)
        rng = np.random.default_rng(11)
        for _ in range(3):
            cols = {
                n: rng.integers(-1000, 1000, 250)
                for n in table.schema.names
            }
            serial.catalog.get("t").append_rows(cols)
            sharded.append_rows("t", cols)
        sql = "SELECT sum(a1), count(*), min(a2) FROM t WHERE a3 > -2000"
        want = serial.execute(sql).result
        assert _identical(sharded.execute(sql).result, want)
        # Kill the tail shard — the one holding every range append.
        victim = sharded._shards[1]
        victim.process.kill()
        victim.process.join()
        wait_until(
            lambda: sharded.alive_shards() == 2,
            timeout=30.0,
            message="watchdog respawn after tail-shard kill",
        )
        assert _identical(sharded.execute(sql).result, want)
        assert sharded.shard_respawns >= 1
    assert leaked_segments() == ()


def test_no_leaked_segments_after_interpreter_death():
    """A whole run dying mid-use leaves /dev/shm clean.

    The child process builds a sharded system, registers a table,
    queries it, kills one of its own shards, and then exits WITHOUT
    calling close() — the atexit hook (and, for hard kills, the shared
    resource tracker) must still unlink every segment the run created.
    """
    script = r"""
import sys
from repro.config import EngineConfig
from repro.core.system import build_system
from repro.storage import generate_table
from repro.sharding.shm import owned_segments

def main():
    system = build_system(EngineConfig(shard_count=2))
    system.register(generate_table("t", 4, 1500, rng=0))
    system.execute("SELECT sum(a1) FROM t WHERE a2 > 0")
    system._shards[0].process.kill()
    print("SEGMENTS:" + ",".join(owned_segments()), flush=True)
    # exit without close(): atexit must clean up

if __name__ == "__main__":
    main()
"""
    src = str(Path(__file__).resolve().parent.parent / "src")
    script_path = Path(__file__).resolve().parent / "_shard_leak_child.py"
    script_path.write_text(script)
    try:
        proc = subprocess.run(
            [sys.executable, str(script_path)],
            capture_output=True,
            text=True,
            timeout=120,
            env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        marker = [
            line
            for line in proc.stdout.splitlines()
            if line.startswith("SEGMENTS:")
        ]
        assert marker, proc.stdout
        created = [s for s in marker[0][len("SEGMENTS:"):].split(",") if s]
        assert created, "the child created no segments?"
        leftovers = [s for s in created if s in leaked_segments()]
        assert leftovers == [], leftovers
    finally:
        script_path.unlink(missing_ok=True)


def test_shard_health_reports_every_shard():
    with build_system(EngineConfig(shard_count=2)) as sharded:
        sharded.register(generate_table("t", 4, 2000, rng=6))
        sharded.execute("SELECT sum(a1) FROM t WHERE a2 > 0")
        healths = sharded.shard_health()
        assert set(healths) == {0, 1}
        for sid, payload in healths.items():
            assert payload is not None
            assert payload["shard"] == sid
            assert "t" in payload["tables"]
    assert leaked_segments() == ()
