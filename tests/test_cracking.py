"""The adaptive-indexing extension (database cracking)."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.extensions import CrackedColumn, CrackingPredicateIndex
from repro.sql import col, parse_query


@pytest.fixture()
def column():
    return np.random.default_rng(3).integers(-1000, 1000, 5000)


class TestCrackedColumn:
    def test_range_matches_scan(self, column):
        cracked = CrackedColumn(column)
        got = cracked.range_row_ids(low=-100, high=250)
        expected = np.flatnonzero((column >= -100) & (column < 250))
        assert (got == expected).all()

    def test_repeated_queries_refine_pieces(self, column):
        cracked = CrackedColumn(column)
        assert cracked.num_pieces == 1
        cracked.range_row_ids(high=0)
        pieces_after_one = cracked.num_pieces
        cracked.range_row_ids(low=-500, high=500)
        assert cracked.num_pieces > pieces_after_one
        cracked.check_invariants()

    def test_answers_stay_correct_as_cracks_accumulate(self, column):
        cracked = CrackedColumn(column)
        rng = np.random.default_rng(7)
        for _ in range(25):
            low, high = sorted(rng.integers(-1200, 1200, 2))
            got = cracked.range_row_ids(low=low, high=high)
            expected = np.flatnonzero((column >= low) & (column < high))
            assert (got == expected).all()
        cracked.check_invariants()

    def test_repeated_boundary_cracks_once(self, column):
        cracked = CrackedColumn(column)
        cracked.range_row_ids(high=0)
        cracks = cracked.cracks_performed
        cracked.range_row_ids(high=0)  # same boundary: no new crack
        assert cracked.cracks_performed == cracks

    def test_open_ranges(self, column):
        cracked = CrackedColumn(column)
        everything = cracked.range_row_ids()
        assert len(everything) == len(column)
        below = cracked.range_row_ids(high=-2000)
        assert len(below) == 0
        above = cracked.range_row_ids(low=-2000)
        assert len(above) == len(column)

    def test_inclusive_bounds(self):
        values = np.array([5, 1, 5, 3, 5, 9])
        cracked = CrackedColumn(values)
        inclusive = cracked.range_row_ids(
            low=5, high=5, low_inclusive=True, high_inclusive=True
        )
        assert (values[inclusive] == 5).all()
        assert len(inclusive) == 3

    def test_source_column_untouched(self, column):
        snapshot = column.copy()
        cracked = CrackedColumn(column)
        cracked.range_row_ids(low=-10, high=10)
        assert (column == snapshot).all()


class TestPredicateIndex:
    @pytest.mark.parametrize(
        "sql_predicate",
        [
            "a1 < 100",
            "a1 <= 100",
            "a1 > -50",
            "a1 >= -50",
            "a1 = 7",
            "200 > a1",  # literal-first forms are flipped
        ],
    )
    def test_matches_mask_semantics(self, column, sql_predicate):
        from repro.execution.evaluator import evaluate_predicate

        predicate = parse_query(
            f"SELECT a1 FROM r WHERE {sql_predicate}"
        ).where
        index = CrackingPredicateIndex()
        got = index.positions_for(predicate, column)
        assert got is not None
        expected = np.flatnonzero(
            evaluate_predicate(predicate, lambda _n: column)
        )
        assert (got == expected).all()

    def test_unsupported_predicates(self, column):
        index = CrackingPredicateIndex()
        both_cols = parse_query("SELECT a1 FROM r WHERE a1 < a2").where
        assert index.positions_for(both_cols, column) is None
        not_equal = parse_query("SELECT a1 FROM r WHERE a1 != 3").where
        assert index.positions_for(not_equal, column) is None
        expr = parse_query("SELECT a1 FROM r WHERE a1 + 1 < 3").where
        assert index.positions_for(expr, column) is None

    def test_index_reused_across_queries(self, column):
        index = CrackingPredicateIndex()
        p1 = parse_query("SELECT a1 FROM r WHERE a1 < 0").where
        p2 = parse_query("SELECT a1 FROM r WHERE a1 < 500").where
        index.positions_for(p1, column)
        index.positions_for(p2, column)
        (pieces, cracks) = index.stats()["a1"]
        assert pieces >= 3 and cracks >= 2

    def test_rebuilds_on_length_change(self, column):
        index = CrackingPredicateIndex()
        p = parse_query("SELECT a1 FROM r WHERE a1 < 0").where
        index.positions_for(p, column)
        longer = np.concatenate([column, column])
        got = index.positions_for(p, longer)
        assert (got == np.flatnonzero(longer < 0)).all()


@given(
    st.lists(st.integers(-50, 50), min_size=1, max_size=200),
    st.lists(
        st.tuples(st.integers(-60, 60), st.integers(-60, 60)),
        min_size=1,
        max_size=20,
    ),
)
@settings(max_examples=60, deadline=None)
def test_property_cracking_equals_scan(values, ranges):
    column = np.array(values, dtype=np.int64)
    cracked = CrackedColumn(column)
    for a, b in ranges:
        low, high = min(a, b), max(a, b)
        got = cracked.range_row_ids(low=low, high=high)
        expected = np.flatnonzero((column >= low) & (column < high))
        assert (got == expected).all()
    cracked.check_invariants()


class TestCrackingEngine:
    def test_results_match_plain_column_engine(self):
        from repro.baselines import ColumnStoreEngine
        from repro.extensions import CrackingColumnStoreEngine
        from repro.storage import generate_table

        plain = ColumnStoreEngine(generate_table("r", 8, 6000, rng=4))
        cracked = CrackingColumnStoreEngine(
            generate_table("r", 8, 6000, rng=4)
        )
        queries = [
            "SELECT sum(a1 + a2) FROM r WHERE a3 < 0",
            "SELECT a1, a2 FROM r WHERE a3 < -500000000 AND a4 > 0",
            "SELECT max(a5) FROM r WHERE a3 > 250000000",
            "SELECT count(*) FROM r WHERE a3 BETWEEN -100 AND 100",
            "SELECT a1 FROM r",  # no predicate at all
        ]
        for sql in queries:
            mine = cracked.execute(sql).result
            theirs = plain.execute(sql).result
            assert mine.allclose(theirs), sql
        assert cracked.index_hits >= 3

    def test_index_refines_across_queries(self):
        from repro.extensions import CrackingColumnStoreEngine
        from repro.storage import generate_table

        engine = CrackingColumnStoreEngine(
            generate_table("r", 4, 6000, rng=4)
        )
        for threshold in (-500, -100, 0, 100, 500):
            engine.execute(
                f"SELECT count(*) FROM r WHERE a1 < {threshold * 10**6}"
            )
        pieces, cracks = engine.index.stats()["a1"]
        assert pieces >= 5


class TestRangeFolding:
    def _run(self, conjunct_sqls, column):
        from repro.sql import parse_query

        index = CrackingPredicateIndex()
        sql = "SELECT a1 FROM r WHERE " + " AND ".join(conjunct_sqls)
        conjuncts = list(parse_query(sql).predicates)
        answer = index.range_for_conjuncts(conjuncts, {"a1": column})
        return answer

    def test_between_pair_folds_into_one_range(self, column):
        answer = self._run(["a1 >= -100", "a1 < 250"], column)
        assert answer is not None
        positions, used = answer
        assert sorted(used) == [0, 1]
        expected = np.flatnonzero((column >= -100) & (column < 250))
        assert (positions == expected).all()

    def test_contradictory_bounds_empty(self, column):
        answer = self._run(["a1 = 5", "a1 < 3"], column)
        positions, used = answer
        assert len(positions) == 0
        assert sorted(used) == [0, 1]

    def test_redundant_bounds_tightened(self, column):
        answer = self._run(["a1 >= -100", "a1 >= 0", "a1 < 500"], column)
        positions, _used = answer
        expected = np.flatnonzero((column >= 0) & (column < 500))
        assert (positions == expected).all()

    def test_mixed_attrs_prefers_two_sided(self, column):
        other = column[::-1].copy()
        from repro.sql import parse_query

        index = CrackingPredicateIndex()
        sql = "SELECT a1 FROM r WHERE a2 < 7 AND a1 >= 0 AND a1 < 100"
        conjuncts = list(parse_query(sql).predicates)
        positions, used = index.range_for_conjuncts(
            conjuncts, {"a1": column, "a2": other}
        )
        assert sorted(used) == [1, 2]  # the a1 pair, not the lone a2
        expected = np.flatnonzero((column >= 0) & (column < 100))
        assert (positions == expected).all()

    def test_unindexable_returns_none(self, column):
        answer = self._run(["a1 + 1 < 3"], column)
        assert answer is None
