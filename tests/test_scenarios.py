"""The adversarial scenario pack (repro/workloads/scenarios.py) and its
replay oracle.

Tier 1 keeps this cheap: generator determinism/parseability plus one
short scenario replayed under both policies.  The full-pack replay (the
nightly/scenario CI job) carries ``@pytest.mark.scenario``.
"""

import pytest

from repro.sql.parser import parse_query
from repro.testkit.oracle import scenario_case
from repro.workloads.scenarios import (
    SCENARIOS,
    build_scenario,
)


def test_registry_contents():
    assert list(SCENARIOS) == [
        "periodic-shift",
        "ping-pong",
        "flash-crowd",
        "mixed-olap-point",
        "trickle-append",
    ]
    with pytest.raises(KeyError):
        build_scenario("no-such-scenario")


@pytest.mark.parametrize("name", list(SCENARIOS))
def test_deterministic_and_parseable(name):
    a = build_scenario(name, seed=7)
    b = build_scenario(name, seed=7)
    assert a.ops == b.ops
    assert a.make_table().column("a1").tolist() == (
        b.make_table().column("a1").tolist()
    )
    # Different seeds move the literals (and usually the hot sets).
    assert a.ops != build_scenario(name, seed=8).ops
    for sql in a.queries:
        query = parse_query(sql)  # must not raise
        assert query.table == a.table_name
    for op in a.ops:
        if op[0] == "append":
            batch = a.append_batch(op[1], op[2])
            assert len(batch) == a.num_attrs
            assert all(len(v) == op[2] for v in batch.values())
            same = a.append_batch(op[1], op[2])
            assert all(
                (batch[k] == same[k]).all() for k in batch
            )


def test_describe_mentions_stream_shape():
    scenario = build_scenario("trickle-append", seed=0)
    text = scenario.describe()
    assert "trickle-append" in text
    assert "appends" in text


def test_smoke_replay_both_policies():
    """Tier-1 gate: one short scenario, both policies, bit-identical."""
    outcome = scenario_case(
        "ping-pong", seed=0, phases=3, phase_len=8, num_rows=512
    )
    assert outcome.queries_checked == 48  # 24 queries x 2 policies
    assert set(outcome.reorgs) == {"greedy-paper", "guarded"}
    assert outcome.reorgs["guarded"] <= outcome.reorgs["greedy-paper"]


@pytest.mark.scenario
@pytest.mark.parametrize("name", list(SCENARIOS))
def test_full_pack_replay(name):
    """The full scenario-replay oracle gate (dedicated CI job)."""
    outcome = scenario_case(name, seed=0)
    assert outcome.queries_checked > 0
    assert outcome.reorgs["guarded"] <= outcome.reorgs["greedy-paper"]


@pytest.mark.scenario
def test_full_pack_replay_reseeded():
    for name in SCENARIOS:
        outcome = scenario_case(name, seed=11)
        assert outcome.queries_checked > 0
