"""WAL framing/recovery edges and DurableStore unit behavior.

The contract under test (see repro/gateway/wal.py):

- an incomplete or CRC-failed **final** record is a torn crash tail —
  tolerated, diagnosed, truncated;
- a CRC-failed record **followed by intact data** is mid-log corruption
  — loud ``WALCorruptionError``, file left untouched;
- a WAL tail whose LSNs the snapshot already covers is skipped on
  replay (crash between snapshot completion and WAL compaction).
"""

from __future__ import annotations

import struct
import zlib

import numpy as np
import pytest

from repro.config import EngineConfig, GatewayConfig
from repro.errors import (
    BadRequestError,
    CatalogError,
    SnapshotError,
    WALCorruptionError,
)
from repro.gateway.persist import (
    DurableStore,
    list_snapshots,
    load_snapshot,
    write_snapshot,
)
from repro.gateway.wal import (
    KIND_APPEND,
    KIND_CREATE,
    WALRecord,
    WriteAheadLog,
    encode_record,
    scan_wal,
)

ATTRS = [("a", "int64"), ("f", "float64")]


def record(lsn, rows=3, kind=KIND_APPEND, table="t"):
    rng = np.random.default_rng(lsn)
    return WALRecord(
        kind=kind,
        table=table,
        lsn=lsn,
        attributes=list(ATTRS),
        columns={
            "a": rng.integers(-100, 100, size=rows, dtype=np.int64),
            "f": rng.standard_normal(rows),
        },
    )


def store_config(**overrides):
    overrides.setdefault("snapshot_every_records", 0)
    return GatewayConfig(**overrides)


def open_store(path, **overrides):
    return DurableStore(
        path,
        engine_config=EngineConfig(),
        gateway_config=store_config(**overrides),
        num_workers=1,
    )


# ---------------------------------------------------------------------------
# Record codec
# ---------------------------------------------------------------------------


def test_record_roundtrip_bit_exact(tmp_path):
    original = record(7, rows=5, kind=KIND_CREATE)
    original.columns["f"][0] = np.nan
    original.columns["f"][1] = -0.0
    log = WriteAheadLog(tmp_path / "wal.log")
    log.append(original)
    log.close()
    scan = scan_wal(tmp_path / "wal.log")
    assert not scan.torn_tail
    (decoded,) = scan.records
    assert decoded.kind == KIND_CREATE
    assert decoded.table == "t"
    assert decoded.lsn == 7
    assert decoded.attributes == ATTRS
    for name in ("a", "f"):
        assert decoded.columns[name].dtype == original.columns[name].dtype
        assert (
            decoded.columns[name].tobytes()
            == original.columns[name].tobytes()
        )
    assert decoded.columns["a"].flags.writeable


def test_empty_and_missing_wal(tmp_path):
    missing = scan_wal(tmp_path / "absent.log")
    assert missing.records == [] and not missing.torn_tail
    (tmp_path / "empty.log").write_bytes(b"")
    empty = scan_wal(tmp_path / "empty.log")
    assert empty.records == [] and empty.good_bytes == 0
    assert not empty.torn_tail


def test_group_commit_is_one_fsync(tmp_path):
    log = WriteAheadLog(tmp_path / "wal.log", fsync=True)
    log.append_batch([record(i) for i in range(1, 6)])
    assert log.fsyncs == 1
    assert log.group_commits == 1
    assert log.records_written == 5
    log.close()
    assert len(scan_wal(tmp_path / "wal.log").records) == 5


# ---------------------------------------------------------------------------
# Torn tails vs corruption
# ---------------------------------------------------------------------------


def test_incomplete_final_record_is_torn_tail(tmp_path):
    path = tmp_path / "wal.log"
    good = encode_record(record(1)) + encode_record(record(2))
    partial = encode_record(record(3))[:-4]  # crash mid-write
    path.write_bytes(good + partial)
    scan = scan_wal(path)
    assert [r.lsn for r in scan.records] == [1, 2]
    assert scan.torn_tail
    assert scan.good_bytes == len(good)


def test_short_header_tail_is_torn(tmp_path):
    path = tmp_path / "wal.log"
    good = encode_record(record(1))
    path.write_bytes(good + b"\x05\x00")  # not even a full length prefix
    scan = scan_wal(path)
    assert [r.lsn for r in scan.records] == [1]
    assert scan.torn_tail and scan.good_bytes == len(good)


def test_crc_failed_final_record_is_torn(tmp_path):
    # Full declared length on disk, payload bytes never all persisted.
    path = tmp_path / "wal.log"
    good = encode_record(record(1))
    bad = bytearray(encode_record(record(2)))
    bad[-1] ^= 0xFF
    path.write_bytes(good + bytes(bad))
    scan = scan_wal(path)
    assert [r.lsn for r in scan.records] == [1]
    assert scan.torn_tail and scan.good_bytes == len(good)


def test_crc_failed_middle_record_raises_loudly(tmp_path):
    path = tmp_path / "wal.log"
    first = encode_record(record(1))
    second = bytearray(encode_record(record(2)))
    second[len(second) // 2] ^= 0xFF
    blob = first + bytes(second) + encode_record(record(3))
    path.write_bytes(blob)
    with pytest.raises(WALCorruptionError, match="mid-log"):
        scan_wal(path)
    assert path.read_bytes() == blob  # left untouched for inspection


def test_garbage_between_records_raises(tmp_path):
    path = tmp_path / "wal.log"
    payload = b"not a wal record at all, but long enough to frame"
    framed = struct.pack("<II", len(payload), 12345) + payload
    path.write_bytes(encode_record(record(1)) + framed + encode_record(record(2)))
    with pytest.raises(WALCorruptionError):
        scan_wal(path)


def test_undecodable_but_crc_valid_final_record_is_torn(tmp_path):
    path = tmp_path / "wal.log"
    payload = b"\xff\xff\xff\xffjunk"  # header_len way past payload
    framed = struct.pack("<II", len(payload), zlib.crc32(payload)) + payload
    good = encode_record(record(1))
    path.write_bytes(good + framed)
    scan = scan_wal(path)
    assert [r.lsn for r in scan.records] == [1]
    assert scan.torn_tail and scan.good_bytes == len(good)


def test_truncate_to_discards_tail(tmp_path):
    path = tmp_path / "wal.log"
    log = WriteAheadLog(path)
    log.append(record(1))
    keep = log.tell()
    log.append(record(2))
    log.truncate_to(keep)
    log.append(record(3))
    log.close()
    assert [r.lsn for r in scan_wal(path).records] == [1, 3]


def test_rewrite_replaces_contents_atomically(tmp_path):
    path = tmp_path / "wal.log"
    log = WriteAheadLog(path)
    log.append_batch([record(i) for i in range(1, 4)])
    log.rewrite([record(9)])
    log.append(record(10))
    log.close()
    assert [r.lsn for r in scan_wal(path).records] == [9, 10]
    assert not path.with_name("wal.log.tmp").exists()


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------


def test_snapshot_without_manifest_is_invisible(tmp_path):
    store = open_store(tmp_path / "d")
    store.create_table("t", ATTRS, {"a": [1, 2], "f": [0.5, 1.5]})
    snap = store.checkpoint()
    store.close(checkpoint=False)
    (snap / "manifest.json").unlink()  # crash mid-snapshot signature
    assert list_snapshots(snap.parent) == []
    reopened = open_store(tmp_path / "d")
    # falls back to WAL... which was compacted; the store is empty but
    # does not crash, and the incomplete snapshot is simply ignored.
    assert reopened.tables() == []
    reopened.close(checkpoint=False)


def test_complete_but_unreadable_snapshot_raises(tmp_path):
    store = open_store(tmp_path / "d")
    store.create_table("t", ATTRS, {"a": [1], "f": [2.0]})
    snap = store.checkpoint()
    store.close(checkpoint=False)
    (snap / "state.json").write_text("{broken")
    with pytest.raises(SnapshotError, match="complete-but-unreadable"):
        open_store(tmp_path / "d")


def test_snapshot_newer_than_wal_tail_skips_by_lsn(tmp_path):
    """Crash between snapshot completion and WAL compaction: the WAL
    tail overlaps the snapshot; replay must skip already-applied LSNs."""
    data_dir = tmp_path / "d"
    store = open_store(data_dir)
    store.create_table("t", ATTRS, {"a": [1], "f": [1.0]})
    store.append("t", {"a": [2], "f": [2.0]})
    store.close(checkpoint=True)  # snapshot at lsn 2, WAL compacted

    # Reconstruct the pre-compaction WAL: both mutations still in it.
    log = WriteAheadLog(data_dir / "wal.log")
    log.rewrite(
        [
            WALRecord(
                kind=KIND_CREATE, table="t", lsn=1,
                attributes=list(ATTRS),
                columns={
                    "a": np.array([1], dtype=np.int64),
                    "f": np.array([1.0]),
                },
            ),
            WALRecord(
                kind=KIND_APPEND, table="t", lsn=2,
                attributes=list(ATTRS),
                columns={
                    "a": np.array([2], dtype=np.int64),
                    "f": np.array([2.0]),
                },
            ),
        ]
    )
    log.close()
    reopened = open_store(data_dir)
    stats = reopened.stats()
    assert stats["recovered"]
    assert stats["replayed_records"] == 0  # all skipped by LSN
    result = reopened.execute("SELECT count(*) FROM t").result
    assert result.data.tolist() == [[2]]
    reopened.close(checkpoint=False)


def test_write_snapshot_seq_disambiguates_same_lsn(tmp_path):
    store = open_store(tmp_path / "d", snapshots_keep=5)
    store.create_table("t", ATTRS, {"a": [1], "f": [1.0]})
    first = store.checkpoint()
    second = store.checkpoint()  # same LSN, learned state may differ
    assert first.name != second.name
    lsns = [(lsn, seq) for lsn, seq, _ in list_snapshots(first.parent)]
    assert lsns == sorted(lsns, reverse=True)
    store.close(checkpoint=False)


def test_snapshot_pruning_keeps_newest(tmp_path):
    store = open_store(tmp_path / "d", snapshots_keep=2)
    store.create_table("t", ATTRS, {"a": [1], "f": [1.0]})
    for _ in range(4):
        store.checkpoint()
    assert len(list_snapshots(store.data_dir / "snapshots")) == 2
    store.close(checkpoint=False)


# ---------------------------------------------------------------------------
# DurableStore units
# ---------------------------------------------------------------------------


def test_recovery_from_wal_only(tmp_path):
    store = open_store(tmp_path / "d")
    store.create_table("t", ATTRS, {"a": [1, 2, 3], "f": [0.5, np.nan, -0.0]})
    store.append("t", {"a": [4], "f": [4.0]})
    before = store.execute("SELECT a, f FROM t").result.data
    store.abandon()  # no checkpoint: WAL is the only persistence
    recovered = open_store(tmp_path / "d")
    stats = recovered.stats()
    assert stats["recovered"] and stats["replayed_records"] == 2
    after = recovered.execute("SELECT a, f FROM t").result.data
    assert after.tobytes() == before.tobytes()  # NaN/−0.0 bit-exact
    recovered.close(checkpoint=False)


def test_append_many_isolates_bad_items(tmp_path):
    store = open_store(tmp_path / "d")
    store.create_table("t", ATTRS, {"a": [1], "f": [1.0]})
    outcomes = store.append_many(
        [
            ("t", {"a": [2, 3], "f": [2.0, 3.0]}),
            ("nope", {"a": [9], "f": [9.0]}),
            ("t", {"a": [4], "f": [4.0, 5.0]}),  # ragged lengths
            ("t", {"a": [], "f": []}),  # empty append is a no-op
            ("t", {"a": [5], "f": [5.0]}),
        ]
    )
    assert outcomes[0] == 2
    assert isinstance(outcomes[1], CatalogError)
    assert isinstance(outcomes[2], BadRequestError)
    assert outcomes[3] == 0
    assert outcomes[4] == 1
    assert store.execute("SELECT count(*) FROM t").result.data.tolist() == [[4]]
    # one group commit covered both good items
    assert store.stats()["wal_group_commits"] == 2  # create + batch
    store.close(checkpoint=False)


def test_create_table_validation(tmp_path):
    store = open_store(tmp_path / "d")
    with pytest.raises(BadRequestError, match="invalid table name"):
        store.create_table("1bad", ATTRS)
    with pytest.raises(BadRequestError, match="invalid table name"):
        store.create_table("dotted.name", ATTRS)
    with pytest.raises(BadRequestError, match="at least one attribute"):
        store.create_table("t", [])
    store.create_table("t", ATTRS)
    with pytest.raises(CatalogError, match="already exists"):
        store.create_table("t", ATTRS)
    store.close(checkpoint=False)


def test_auto_checkpoint_every_n_records(tmp_path):
    store = open_store(tmp_path / "d", snapshot_every_records=3)
    store.create_table("t", ATTRS)  # record 1
    store.append("t", {"a": [1], "f": [1.0]})  # record 2
    assert store.checkpoints == 0
    store.append("t", {"a": [2], "f": [2.0]})  # record 3 -> checkpoint
    assert store.checkpoints == 1
    assert store.stats()["records_since_checkpoint"] == 0
    store.close(checkpoint=False)


def test_wal_disabled_store_does_not_persist(tmp_path):
    store = open_store(tmp_path / "d", wal_enabled=False)
    store.create_table("t", ATTRS, {"a": [1], "f": [1.0]})
    store.abandon()
    reopened = open_store(tmp_path / "d", wal_enabled=False)
    assert reopened.tables() == []
    reopened.close(checkpoint=False)


def test_load_snapshot_roundtrips_layout_descriptors(tmp_path):
    """write_snapshot/load_snapshot preserve non-trivial physical
    configurations (a materialized group), not just logical columns."""
    from repro.sql.types import DataType
    from repro.storage import Schema, Table
    from repro.storage.schema import Attribute

    schema = Schema(
        [Attribute("x", DataType.INT64), Attribute("y", DataType.INT64)]
    )
    table = Table.from_columns(
        "g",
        schema,
        {
            "x": np.arange(10, dtype=np.int64),
            "y": np.arange(10, dtype=np.int64) * 2,
        },
        initial_layout="row",
    )
    snap = write_snapshot(tmp_path, lsn=5, seq=0, tables={"g": table},
                          states={"g": {}})
    lsn, tables, states = load_snapshot(snap)
    assert lsn == 5
    loaded = tables["g"]
    assert [
        (layout.kind.name, tuple(layout.attrs)) for layout in loaded.layouts
    ] == [
        (layout.kind.name, tuple(layout.attrs)) for layout in table.layouts
    ]
    assert loaded.column("y").tolist() == table.column("y").tolist()


# ---------------------------------------------------------------------------
# Snapshot durability ordering + apply-divergence isolation
# ---------------------------------------------------------------------------


def _int_table(name="g", rows=10):
    from repro.sql.types import DataType
    from repro.storage import Schema, Table
    from repro.storage.schema import Attribute

    schema = Schema(
        [Attribute("x", DataType.INT64), Attribute("y", DataType.INT64)]
    )
    return Table.from_columns(
        name,
        schema,
        {
            "x": np.arange(rows, dtype=np.int64),
            "y": np.arange(rows, dtype=np.int64) * 2,
        },
    )


def test_write_snapshot_fsyncs_data_before_manifest(tmp_path, monkeypatch):
    """Every snapshot file and directory entry is fsync'd before the
    manifest advertises completeness, and the directories again after
    the rename — so compacting the WAL right after write_snapshot
    returns cannot lose acknowledged writes to a power cut."""
    from repro.gateway import persist

    events = []  # (fsynced name, manifest visible at that instant)
    real = persist._fsync_path

    def recording(path):
        visible = any((tmp_path / "snaps").glob("snap-*/manifest.json"))
        events.append((path.name, visible))
        real(path)

    monkeypatch.setattr(persist, "_fsync_path", recording)
    snap = write_snapshot(
        tmp_path / "snaps",
        lsn=1,
        seq=0,
        tables={"g": _int_table()},
        states={"g": {}},
    )
    before = {name for name, visible in events if not visible}
    after = {name for name, visible in events if visible}
    # data files + their directory entries durable pre-manifest
    assert {"g.npz", "g.json", "state.json", "tables", snap.name} <= before
    # the rename itself made durable afterwards
    assert {snap.name, "snaps"} <= after


def test_write_snapshot_fsync_off_skips_syncs(tmp_path, monkeypatch):
    from repro.gateway import persist

    calls = []
    monkeypatch.setattr(persist, "_fsync_path", calls.append)
    write_snapshot(
        tmp_path / "snaps",
        lsn=1,
        seq=0,
        tables={"g": _int_table()},
        states={"g": {}},
        fsync=False,
    )
    assert calls == []


def test_checkpoint_fsync_follows_wal_fsync_knob(tmp_path, monkeypatch):
    from repro.gateway import persist

    calls = []
    real = persist._fsync_path

    def recording(path):
        calls.append(path)
        real(path)

    monkeypatch.setattr(persist, "_fsync_path", recording)
    store = open_store(tmp_path / "d")
    store.create_table("t", ATTRS, {"a": [1], "f": [1.0]})
    store.checkpoint()
    assert calls  # durable mode fsyncs the snapshot tree
    store.close(checkpoint=False)

    calls.clear()
    relaxed = open_store(tmp_path / "d2", wal_fsync=False)
    relaxed.create_table("t", ATTRS, {"a": [1], "f": [1.0]})
    relaxed.checkpoint()
    assert calls == []  # ablation mode: page cache only, like the WAL
    relaxed.close(checkpoint=False)


def test_apply_failure_after_wal_fsync_is_isolated(tmp_path, monkeypatch):
    """An append that fails to apply *after* its WAL record is durable
    must not fail the rest of the batch; it is surfaced as a divergence
    and healed by replay on the next restart."""
    from repro.errors import StorageError
    from repro.storage.relation import Table

    store = open_store(tmp_path / "d")
    store.create_table("t", ATTRS, {"a": [1], "f": [1.0]})
    real = Table.append_rows
    calls = {"n": 0}

    def failing(self, arrays):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("simulated apply failure")
        return real(self, arrays)

    monkeypatch.setattr(Table, "append_rows", failing)
    outcomes = store.append_many(
        [
            ("t", {"a": [2], "f": [2.0]}),  # WAL-durable, apply fails
            ("t", {"a": [3], "f": [3.0]}),  # must still apply
        ]
    )
    assert isinstance(outcomes[0], StorageError)
    assert "durable in the WAL" in str(outcomes[0])
    assert outcomes[1] == 1
    assert store.stats()["apply_divergences"] == 1
    # in-memory: seed row + the one applied append
    assert store.execute("SELECT count(*) FROM t").result.data.tolist() == [
        [2]
    ]
    monkeypatch.undo()
    store.abandon()
    recovered = open_store(tmp_path / "d")
    # replay heals the divergence: all three WAL records applied
    assert recovered.execute(
        "SELECT count(*) FROM t"
    ).result.data.tolist() == [[3]]
    assert recovered.stats()["apply_divergences"] == 0
    recovered.close(checkpoint=False)


def test_table_infos_is_a_consistent_snapshot(tmp_path):
    store = open_store(tmp_path / "d")
    store.create_table("b", ATTRS, {"a": [1], "f": [1.0]})
    store.create_table("a", ATTRS)
    assert store.table_infos() == [
        {"name": "a", "num_rows": 0},
        {"name": "b", "num_rows": 1},
    ]
    store.close(checkpoint=False)
