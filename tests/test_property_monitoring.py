"""Property tests for monitoring state under arbitrary event sequences."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.affinity import AffinityMatrix
from repro.core.monitor import Monitor
from repro.sql.builder import QueryBuilder
from repro.storage import wide_schema

SCHEMA = wide_schema(6)
NAMES = list(SCHEMA.names)


def make_query(attrs):
    return QueryBuilder("r").select_columns(sorted(attrs)).build()


attr_sets = st.lists(
    st.sampled_from(NAMES), min_size=1, max_size=4, unique=True
).map(frozenset)


@given(st.lists(attr_sets, max_size=40), st.integers(1, 10))
@settings(max_examples=60, deadline=None)
def test_window_stats_match_recomputation(observations, capacity):
    """Incrementally maintained affinity == recomputed from the window."""
    monitor = Monitor(SCHEMA, capacity)
    for attrs in observations:
        monitor.observe(make_query(attrs))

    assert len(monitor) == min(capacity, len(observations))

    fresh = AffinityMatrix(SCHEMA)
    for query in monitor.window:
        fresh.add(query.select_attributes)
    assert (fresh.matrix == monitor.select_affinity.matrix).all()


@given(
    st.lists(attr_sets, min_size=1, max_size=30),
    st.lists(st.integers(1, 8), min_size=1, max_size=5),
)
@settings(max_examples=40, deadline=None)
def test_resize_never_corrupts(observations, resizes):
    monitor = Monitor(SCHEMA, 8)
    for attrs in observations:
        monitor.observe(make_query(attrs))
    for capacity in resizes:
        monitor.resize(capacity)
        assert len(monitor) <= capacity
        # Pattern counts must equal window recomputation after resize.
        from collections import Counter

        expected = Counter(
            q.select_attributes for q in monitor.window
        )
        assert dict(monitor._select_patterns) == {
            k: v for k, v in expected.items() if v > 0
        }


@given(st.lists(attr_sets, min_size=1, max_size=25))
@settings(max_examples=40, deadline=None)
def test_affinity_add_remove_inverse(observations):
    matrix = AffinityMatrix(SCHEMA)
    for attrs in observations:
        matrix.add(attrs)
    for attrs in observations:
        matrix.remove(attrs)
    assert (matrix.matrix == 0).all()


@given(st.lists(attr_sets, min_size=1, max_size=25))
@settings(max_examples=40, deadline=None)
def test_pattern_frequency_consistent(observations):
    monitor = Monitor(SCHEMA, 100)
    for attrs in observations:
        monitor.observe(make_query(attrs))
    universe = frozenset(NAMES)
    assert monitor.pattern_frequency(universe) == len(observations)
    for attrs, count in monitor.distinct_access_sets():
        assert monitor.pattern_frequency(attrs) >= count
