"""Stress tests: many clients, background adaptation, overload, appends.

The acceptance bar for the concurrent service:

- N >= 8 client threads x M >= 50 mixed query shapes with background
  adaptation enabled produce results *identical* to serial execution;
- overload triggers graceful admission rejection, never a crash;
- no query ever observes a partially materialized layout or a torn
  row count, even with concurrent appends.

Determinism note: the generated tables hold integer values, so every
float aggregate (sums of |v| < 2**31 over a few thousand rows) stays
far below 2**53 and is *exactly* order-independent — concurrent and
serial runs must agree bit-for-bit, not just approximately.

Timing discipline: no fixed sleeps for synchronization.  Every wait is
a bounded poll on an observable condition (``conftest.wait_until``), so
slow CI runners extend a deadline instead of flipping an outcome.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from tests.conftest import wait_until
from repro import H2OService, generate_table
from repro.baselines.row_engine import RowStoreEngine
from repro.config import EngineConfig
from repro.core.system import H2OSystem
from repro.errors import ServiceOverloadedError
from repro.sql.parser import parse_query
from repro.testkit.faults import FaultInjector, random_schedule
from repro.testkit.oracle import results_identical
from repro.util.rng import derive_rng
from repro.workloads.scenarios import build_scenario

pytestmark = pytest.mark.stress

NUM_CLIENTS = 8
NUM_SHAPES = 56  # 8 clients x 7 queries, > 50 mixed shapes


def make_table(name="r", rng=17):
    return generate_table(name, num_attrs=12, num_rows=4000, rng=rng)


def mixed_workload():
    """56 aggregation queries over mixed shapes, literals, and widths."""
    queries = []
    for i in range(NUM_SHAPES):
        a = 1 + (i % 6)
        b = 1 + ((i + 3) % 6)
        c = 7 + (i % 5)
        threshold = (i - 28) * 10_000_000
        kind = i % 7
        if kind == 0:
            sql = f"SELECT sum(a{a} + a{b}) FROM r WHERE a{c} > {threshold}"
        elif kind == 1:
            sql = f"SELECT count(*) FROM r WHERE a{a} < {threshold}"
        elif kind == 2:
            sql = (
                f"SELECT min(a{a}), max(a{b}) FROM r "
                f"WHERE a{c} > {threshold} AND a{a} < 500000000"
            )
        elif kind == 3:
            sql = (
                f"SELECT sum(a{a}), count(*) FROM r "
                f"WHERE a{b} IN ({threshold}, {threshold + 1})"
            )
        elif kind == 4:
            # Hot repeated shape: drives the advisor toward a group.
            sql = f"SELECT sum(a1 + a2 + a3) FROM r WHERE a4 > {threshold}"
        elif kind == 5:
            sql = f"SELECT max(a{a} + a{b}) FROM r"
        else:
            sql = (
                f"SELECT sum(a{a} - a{b}) FROM r "
                f"WHERE NOT (a{c} > {threshold})"
            )
        queries.append(sql)
    return queries


def serial_results(queries):
    """The ground truth: one fresh engine, one thread, paper defaults."""
    system = H2OSystem(config=EngineConfig())
    system.register(make_table())
    return [system.execute(sql).result.scalars() for sql in queries]


# ---------------------------------------------------------------------------
# Serial equivalence under heavy concurrency + background adaptation
# ---------------------------------------------------------------------------


def test_concurrent_results_identical_to_serial():
    queries = mixed_workload()
    expected = serial_results(queries)

    service = H2OService(
        config=EngineConfig(adaptation_mode="background"),
        num_workers=NUM_CLIENTS,
        max_pending=4 * NUM_CLIENTS * NUM_SHAPES,
    )
    service.register(make_table())
    results: dict = {}
    errors: list = []

    def client(worker_id: int) -> None:
        session = service.session(f"client-{worker_id}", timeout=120.0)
        try:
            # Each client runs the full workload in a rotated order so
            # shapes overlap across threads (maximum cache contention).
            for offset in range(NUM_SHAPES):
                index = (offset + worker_id * 7) % NUM_SHAPES
                report = session.execute(queries[index])
                results.setdefault(index, []).append(
                    report.result.scalars()
                )
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(i,))
        for i in range(NUM_CLIENTS)
    ]
    # GIL guarantees dict.setdefault/append atomicity per op; each index
    # list only ever gains complete scalar tuples.
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(300.0)
    try:
        assert not errors, f"client thread failed: {errors[0]!r}"
        assert all(not t.is_alive() for t in threads), "stress run hung"
        for index, sql in enumerate(queries):
            for got in results[index]:
                assert got == expected[index], (
                    f"divergence on {sql!r}: {got} != {expected[index]}"
                )
        snap = service.stats.snapshot()
        assert snap["completed"] == NUM_CLIENTS * NUM_SHAPES
        assert snap["failed"] == 0
        assert snap["peak_concurrency"] >= 2, (
            "no scan overlap observed across workers"
        )
    finally:
        service.close()


def test_background_adaptation_publishes_during_traffic():
    """Layout epochs advance mid-run and late queries still agree."""
    hot = "SELECT sum(a1 + a2 + a3) FROM r WHERE a4 > 0"
    serial = H2OSystem(config=EngineConfig())
    serial.register(make_table())
    expected = serial.execute(hot).result.scalars()

    service = H2OService(
        config=EngineConfig(adaptation_mode="background"),
        num_workers=NUM_CLIENTS,
        max_pending=2048,
    )
    service.register(make_table())
    errors: list = []
    epochs: list = []

    def client(worker_id: int) -> None:
        session = service.session(f"hot-{worker_id}", timeout=120.0)
        try:
            for _ in range(30):
                report = session.execute(hot)
                epochs.append(report.snapshot_epoch)
                assert report.result.scalars() == expected
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(i,))
        for i in range(NUM_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(300.0)
    try:
        assert not errors, f"client thread failed: {errors[0]!r}"
        engine = service.system.engine_for("r")
        wait_until(
            lambda: (
                engine.table.find_group(("a1", "a2", "a3", "a4")) is not None
                or engine.table.layout_epoch >= 1
            ),
            timeout=30.0,
            message="background layout publication",
        )
        assert engine.table.layout_epoch >= 1, (
            "background adaptation never published a layout"
        )
        assert service.scheduler.stats()["groups_published"] >= 1
        # Queries that planned against the new epoch saw the same data.
        assert service.execute(hot, timeout=60.0).result.scalars() == (
            expected
        )
    finally:
        service.close()


# ---------------------------------------------------------------------------
# Overload: back-pressure, not crashes
# ---------------------------------------------------------------------------


def test_overload_rejects_gracefully_from_many_threads():
    service = H2OService(
        config=EngineConfig(),
        num_workers=1,
        max_pending=4,
    )
    service.register(make_table())
    outcomes = {"completed": 0, "rejected": 0}
    errors: list = []
    lock = threading.Lock()

    def flood(worker_id: int) -> None:
        session = service.session(f"flood-{worker_id}", timeout=120.0)
        for i in range(12):
            try:
                report = session.execute(
                    f"SELECT sum(a{1 + i % 4}) FROM r"
                )
                assert len(report.result.scalars()) == 1
                with lock:
                    outcomes["completed"] += 1
            except ServiceOverloadedError:
                with lock:
                    outcomes["rejected"] += 1
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

    threads = [
        threading.Thread(target=flood, args=(i,)) for i in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(300.0)
    try:
        assert not errors, f"unexpected failure: {errors[0]!r}"
        total = outcomes["completed"] + outcomes["rejected"]
        assert total == 8 * 12
        assert outcomes["rejected"] >= 1, (
            "the flood never tripped admission control"
        )
        assert outcomes["completed"] >= 1
        snap = service.stats.snapshot()
        assert snap["rejected"] == outcomes["rejected"]
        assert service.admission.in_flight == 0
    finally:
        service.close()


# ---------------------------------------------------------------------------
# Adversarial scenario through the service, under chaos faults
# ---------------------------------------------------------------------------


def _run_ping_pong_service(scenario, expected, policy_config, tag):
    """Replay the scenario serially through a faulted service; return
    the engine after asserting every answer is bit-identical."""
    service = H2OService(
        config=policy_config,
        num_workers=3,
        max_pending=4 * len(scenario.queries),
        max_query_attempts=8,
        name=f"scenario-stress-{tag}",
    )
    schedule = random_schedule(
        derive_rng(scenario.seed, "scenario-stress", tag),
        horizon=len(scenario.queries),
        faults_per_point=2,
        points=(
            "codegen.compile",
            "reorg.offline",
            "service.worker",
            "service.execute",
        ),
    )
    try:
        with FaultInjector(schedule):
            service.register(scenario.make_table())
            engine = service.system.engine_for(scenario.table_name)
            for index, sql in enumerate(scenario.queries):
                report = service.execute(sql, timeout=120.0)
                assert results_identical(report.result, expected[index]), (
                    f"[{tag}] query #{index} diverged under faults: {sql}"
                )
            assert engine.policy.regret_bound_satisfied()
            return engine
    finally:
        service.close()


def test_ping_pong_scenario_guarded_bounds_reorgs_under_chaos():
    """The ping-pong adversary through the full service with chaos
    faults firing: answers stay bit-identical under *both* policies,
    and the guarded ledger bounds reorganization spend (an unhedged
    candidate is never built) while greedy pays for the thrash."""
    scenario = build_scenario(
        "ping-pong", seed=0, phases=4, phase_len=12, num_rows=2048
    )
    reference = RowStoreEngine(
        scenario.make_table(), EngineConfig(use_codegen=False)
    )
    expected = [
        reference.execute(parse_query(sql)).result
        for sql in scenario.queries
    ]
    knobs = dict(
        window_size=4,
        min_window=2,
        max_window=12,
        amortization_threshold=1.0,
        adaptation_mode="background",
    )

    greedy_engine = _run_ping_pong_service(
        scenario, expected, EngineConfig(**knobs), "greedy"
    )
    # Greedy's background scheduler chases every rotating hot trio;
    # publication is asynchronous, so wait (bounded) for at least one.
    wait_until(
        lambda: len(greedy_engine.manager.creation_log) >= 1,
        timeout=30.0,
        message="greedy background layout publication",
    )

    guarded_engine = _run_ping_pong_service(
        scenario,
        expected,
        EngineConfig(
            adaptation_policy="guarded", hedging_factor=1e9, **knobs
        ),
        "guarded",
    )
    greedy_reorgs = len(greedy_engine.manager.creation_log)
    guarded_reorgs = len(guarded_engine.manager.creation_log)
    assert guarded_reorgs == 0, (
        f"guarded built {guarded_reorgs} layout(s) despite an unmet "
        f"hedge — the policy gate leaked through the service path"
    )
    assert greedy_reorgs >= 1
    # The guard actually considered (and refused) candidates: the
    # ledger accrued benefit toward the rotating trios.
    assert guarded_engine.policy.ledger, (
        "guarded service run never ledgered a candidate"
    )


# ---------------------------------------------------------------------------
# Concurrent appends: no torn row counts, no partial layouts
# ---------------------------------------------------------------------------


def test_appends_concurrent_with_queries_never_tear():
    table = make_table()
    base_rows = table.num_rows
    batch = 64
    num_batches = 20
    valid_counts = {base_rows + k * batch for k in range(num_batches + 1)}

    service = H2OService(
        config=EngineConfig(adaptation_mode="background"),
        num_workers=4,
        max_pending=2048,
    )
    service.register(table)
    errors: list = []
    stop = threading.Event()
    observed: list = []

    def writer() -> None:
        rng = np.random.default_rng(5)
        try:
            for _ in range(num_batches):
                rows = {
                    name: rng.integers(
                        -(10**9), 10**9, size=batch, dtype=np.int64
                    )
                    for name in table.schema.names
                }
                seen_before = len(observed)
                table.append_rows(rows)
                # Interleave by *condition*, not by timing: wait (bounded)
                # until some reader completed a query after this append,
                # so every batch boundary is actually observed under load.
                try:
                    wait_until(
                        lambda: len(observed) > seen_before or stop.is_set(),
                        timeout=10.0,
                        interval=0.001,
                        message="a reader observation between appends",
                    )
                except AssertionError:
                    pass  # readers crashed/slow: appends still complete
        except BaseException as exc:  # pragma: no cover
            errors.append(exc)
        finally:
            stop.set()

    def reader(worker_id: int) -> None:
        session = service.session(f"reader-{worker_id}", timeout=120.0)
        try:
            while not stop.is_set():
                report = session.execute(
                    "SELECT count(*), sum(a1 - a1) FROM r"
                )
                count, zero = report.result.scalars()
                observed.append(int(count))
                # A torn snapshot would scan layouts of unequal length;
                # sum(a1 - a1) == 0 proves the scan was consistent.
                assert zero == 0
        except BaseException as exc:  # pragma: no cover
            errors.append(exc)

    writer_thread = threading.Thread(target=writer)
    reader_threads = [
        threading.Thread(target=reader, args=(i,)) for i in range(4)
    ]
    for thread in reader_threads:
        thread.start()
    writer_thread.start()
    writer_thread.join(120.0)
    for thread in reader_threads:
        thread.join(120.0)
    try:
        assert not errors, f"concurrent append/read failed: {errors[0]!r}"
        assert observed, "readers never completed a query"
        torn = [c for c in observed if c not in valid_counts]
        assert not torn, f"torn row counts observed: {sorted(set(torn))}"
        # Epoch advanced exactly once per append (plus any background
        # layout publications, which only ever add to it).
        assert table.layout_epoch >= num_batches
        assert table.num_rows == base_rows + num_batches * batch
        assert all(
            layout.num_rows == table.num_rows for layout in table.layouts
        )
    finally:
        service.close()
