"""Unit tests for the concurrent query service's building blocks.

Covers admission control, sessions, futures/timeouts, service stats,
snapshot isolation (including the append-epoch contract), and the
background adaptation scheduler driven synchronously.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import H2OService, generate_table
from repro.config import EngineConfig
from repro.errors import (
    AdaptationError,
    QueryTimeoutError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.service import AdmissionController, ServiceStats, percentile
from repro.service.scheduler import AdaptationScheduler
from repro.storage.relation import LayoutSnapshot


@pytest.fixture()
def table():
    return generate_table("r", num_attrs=10, num_rows=2000, rng=3)


def make_service(table, **kwargs):
    kwargs.setdefault("config", EngineConfig())
    service = H2OService(**kwargs)
    service.register(table)
    return service


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ServiceError):
            AdmissionController(0)

    def test_acquire_release_cycle(self):
        ctl = AdmissionController(2)
        assert ctl.try_acquire() and ctl.try_acquire()
        assert not ctl.try_acquire()
        assert ctl.stats()["rejected"] == 1
        ctl.release()
        assert ctl.try_acquire()
        assert ctl.stats()["peak_in_flight"] == 2

    def test_release_never_goes_negative(self):
        ctl = AdmissionController(1)
        ctl.release()
        assert ctl.in_flight == 0

    def test_overloaded_service_rejects_gracefully(self, table):
        # Zero workers: nothing drains, so capacity is hit exactly.
        service = make_service(
            table, num_workers=0, max_pending=3
        )
        try:
            for _ in range(3):
                service.submit("SELECT sum(a1) FROM r")
            with pytest.raises(ServiceOverloadedError):
                service.submit("SELECT sum(a1) FROM r")
            snap = service.stats.snapshot()
            assert snap["submitted"] == 4
            assert snap["rejected"] == 1
        finally:
            service.close()


# ---------------------------------------------------------------------------
# Sessions
# ---------------------------------------------------------------------------


class TestSessions:
    def test_session_accounting(self, table):
        with make_service(table, num_workers=2) as service:
            session = service.session("alice")
            for _ in range(5):
                session.execute("SELECT sum(a1) FROM r", timeout=30.0)
            stats = session.stats()
            assert stats["submitted"] == 5
            assert stats["completed"] == 5
            assert stats["failed"] == 0

    def test_closed_session_refuses_submissions(self, table):
        with make_service(table, num_workers=1) as service:
            session = service.session("bob")
            session.close()
            with pytest.raises(ServiceError):
                session.submit("SELECT sum(a1) FROM r")

    def test_sessions_are_tracked_by_id(self, table):
        with make_service(table, num_workers=1) as service:
            service.session("a")
            service.session("b")
            assert set(service.sessions()) == {"a", "b"}

    def test_session_rejection_is_counted_per_client(self, table):
        service = make_service(table, num_workers=0, max_pending=1)
        try:
            session = service.session("carol")
            session.submit("SELECT sum(a1) FROM r")
            with pytest.raises(ServiceOverloadedError):
                session.submit("SELECT sum(a1) FROM r")
            assert session.stats()["rejected"] == 1
        finally:
            service.close()


# ---------------------------------------------------------------------------
# Futures, timeouts, shutdown
# ---------------------------------------------------------------------------


class TestFuturesAndTimeouts:
    def test_future_resolves_to_report(self, table):
        with make_service(table, num_workers=2) as service:
            future = service.submit("SELECT sum(a1), count(*) FROM r")
            report = future.result(30.0)
            assert future.done()
            assert report.result.scalars()[1] == table.num_rows

    def test_queued_query_can_be_cancelled(self, table):
        service = make_service(table, num_workers=0, max_pending=4)
        try:
            future = service.submit("SELECT sum(a1) FROM r")
            assert future.cancel()
            assert service.admission.in_flight < 4
            with pytest.raises(QueryTimeoutError):
                future.result(0.01)
        finally:
            service.close()

    def test_timeout_raises_and_counts(self, table):
        # No workers -> the query can never finish.
        service = make_service(table, num_workers=0, max_pending=4)
        try:
            future = service.submit(
                "SELECT sum(a1) FROM r", timeout=0.05
            )
            with pytest.raises(QueryTimeoutError):
                future.result()
            assert service.stats.snapshot()["timeouts"] == 1
        finally:
            service.close()

    def test_default_timeout_applies_to_sessions(self, table):
        service = make_service(
            table, num_workers=0, max_pending=4, default_timeout=0.05
        )
        try:
            session = service.session("dave")
            with pytest.raises(QueryTimeoutError):
                session.execute("SELECT sum(a1) FROM r")
            assert session.stats()["timeouts"] == 1
        finally:
            service.close()

    def test_closed_service_refuses_submissions(self, table):
        service = make_service(table, num_workers=1)
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit("SELECT sum(a1) FROM r")

    def test_parse_errors_raise_in_the_callers_thread(self, table):
        from repro.errors import ParseError

        with make_service(table, num_workers=1) as service:
            with pytest.raises(ParseError):
                service.submit("SELEC nonsense")
            # A rejected parse never occupies an admission slot.
            assert service.admission.in_flight == 0


# ---------------------------------------------------------------------------
# Service stats
# ---------------------------------------------------------------------------


class TestServiceStats:
    def test_percentile_nearest_rank(self):
        samples = [float(i) for i in range(1, 101)]
        assert percentile(samples, 0.50) == 50.0
        assert percentile(samples, 0.99) == 99.0
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 100.0
        assert percentile([], 0.5) == 0.0

    def test_snapshot_is_defensive(self):
        stats = ServiceStats()
        stats.note_submitted()
        stats.note_started()
        stats.note_completed(0.010)
        snap = stats.snapshot()
        snap["completed"] = 999  # mutating the copy...
        assert stats.snapshot()["completed"] == 1  # ...changes nothing
        assert stats.snapshot()["p50_ms"] == pytest.approx(10.0)

    def test_peak_concurrency_tracks_overlap(self):
        stats = ServiceStats()
        for _ in range(3):
            stats.note_started()
        stats.note_completed(0.001)
        stats.note_started()
        assert stats.snapshot()["peak_concurrency"] == 3


# ---------------------------------------------------------------------------
# Snapshot isolation + the append-epoch contract
# ---------------------------------------------------------------------------


class TestSnapshotIsolation:
    def test_snapshot_is_immutable_view(self, table):
        snap = table.snapshot()
        assert isinstance(snap, LayoutSnapshot)
        assert snap.epoch == table.layout_epoch
        assert snap.num_rows == table.num_rows
        assert len(snap.layouts) == len(table.layouts)

    def test_append_bumps_epoch_exactly_once(self, table):
        before = table.layout_epoch
        n_layouts = len(table.layouts)
        rows = {
            name: np.arange(10, dtype=np.int64)
            for name in table.schema.names
        }
        table.append_rows(rows)
        assert table.layout_epoch == before + 1
        assert len(table.layouts) == n_layouts
        assert all(
            layout.num_rows == table.num_rows for layout in table.layouts
        )

    def test_old_snapshot_survives_append(self, table):
        snap = table.snapshot()
        rows = {
            name: np.ones(5, dtype=np.int64)
            for name in table.schema.names
        }
        table.append_rows(rows)
        # The pinned snapshot still sees the pre-append world.
        assert snap.num_rows == table.num_rows - 5
        assert snap.column("a1").shape[0] == snap.num_rows
        assert table.snapshot().num_rows == table.num_rows

    def test_add_and_drop_layout_each_bump_once(self, table):
        from repro.storage.stitcher import stitch_group

        before = table.layout_epoch
        group, _ = stitch_group(
            table.layouts, ("a1", "a2"), table.schema
        )
        table.add_layout(group)
        assert table.layout_epoch == before + 1
        table.drop_layout(group)
        assert table.layout_epoch == before + 2

    def test_queries_report_their_snapshot_epoch(self, table):
        with make_service(table, num_workers=1) as service:
            report = service.execute(
                "SELECT sum(a1) FROM r", timeout=30.0
            )
            assert report.snapshot_epoch == table.layout_epoch


# ---------------------------------------------------------------------------
# Background adaptation (scheduler driven synchronously)
# ---------------------------------------------------------------------------


class TestBackgroundAdaptation:
    def test_invalid_adaptation_mode_rejected(self):
        with pytest.raises(AdaptationError):
            EngineConfig(adaptation_mode="sometimes")

    def test_background_mode_starts_a_scheduler(self, table):
        with make_service(
            table, config=EngineConfig(adaptation_mode="background")
        ) as service:
            assert service.scheduler is not None
            assert service.scheduler.running
        assert not service.scheduler.running

    def test_inline_mode_has_no_scheduler(self, table):
        with make_service(table) as service:
            assert service.scheduler is None

    def test_synchronous_cycle_publishes_a_group(self, table):
        from repro.core.system import H2OSystem

        system = H2OSystem(
            config=EngineConfig(adaptation_mode="background")
        )
        system.register(table)
        engine = system.engine_for("r")
        scheduler = AdaptationScheduler(system)  # never started
        scheduler.attach(engine)
        before = table.layout_epoch
        # Drive enough repeats for the advisor to find a hot group.
        for _ in range(engine.config.max_window + 5):
            system.execute("SELECT sum(a1 + a2) FROM r WHERE a3 > 0")
        published = 0
        for _ in range(10):
            published += scheduler.run_cycle()
            if published:
                break
        assert published >= 1
        assert table.layout_epoch > before
        assert table.find_group(("a1", "a2", "a3")) is not None or (
            table.find_group(("a1", "a2")) is not None
        )
        assert scheduler.stats()["groups_published"] == published

    def test_published_group_preserves_results(self, table):
        from repro.core.system import H2OSystem

        sql = "SELECT sum(a1 + a2), count(*) FROM r WHERE a3 > 0"
        system = H2OSystem(
            config=EngineConfig(adaptation_mode="background")
        )
        system.register(table)
        engine = system.engine_for("r")
        scheduler = AdaptationScheduler(system)
        scheduler.attach(engine)
        baseline = system.execute(sql).result.scalars()
        for _ in range(engine.config.max_window + 5):
            system.execute(sql)
        scheduler.run_cycle()
        after = system.execute(sql).result.scalars()
        assert after == baseline

    def test_append_between_stitch_and_publish_discards_group(self, table):
        """A publication raced by an append is dropped, not torn."""
        from repro.core.system import H2OSystem
        from repro.storage.stitcher import stitch_group

        system = H2OSystem(
            config=EngineConfig(adaptation_mode="background")
        )
        system.register(table)
        engine = system.engine_for("r")
        snapshot = table.snapshot()
        group, _ = stitch_group(
            snapshot.layouts, ("a1", "a4"), snapshot.schema
        )
        rows = {
            name: np.zeros(3, dtype=np.int64)
            for name in table.schema.names
        }
        table.append_rows(rows)  # invalidates the stitched group
        assert engine.publish_group(group, 0.0) is False
        assert table.find_group(("a1", "a4")) is None
