"""ASCII chart rendering."""

import pytest

from repro.util.chart import bar_chart, line_chart


class TestLineChart:
    def test_renders_all_series_glyphs(self):
        text = line_chart({"a": [1, 2, 3], "b": [3, 2, 1]}, width=20, height=6)
        assert "o" in text and "x" in text
        assert "o a" in text and "x b" in text  # legend

    def test_constant_series(self):
        text = line_chart({"flat": [5, 5, 5]}, width=10, height=4)
        assert "flat" in text

    def test_log_scale_labels(self):
        text = line_chart(
            {"s": [0.001, 0.01, 0.1, 1.0]}, width=12, height=6, log_y=True
        )
        assert "1" in text

    def test_title(self):
        text = line_chart({"s": [1.0]}, title="T")
        assert text.splitlines()[0] == "T"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"s": []})


class TestBarChart:
    def test_peak_bar_longest(self):
        text = bar_chart({"small": 1.0, "big": 4.0}, width=20)
        lines = {l.split("|")[0].strip(): l.count("#") for l in text.splitlines()}
        assert lines["big"] > lines["small"]

    def test_zero_bar(self):
        text = bar_chart({"zero": 0.0, "one": 1.0})
        assert "zero" in text

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            bar_chart({})


class TestCLIIntegration:
    def test_chart_for_fig_series(self):
        from repro.bench.__main__ import _chart_for
        from repro.bench.harness import ExperimentResult

        result = ExperimentResult(
            experiment_id="x",
            title="t",
            headers=["a"],
            rows=[],
            series={"h2o": [0.1, 0.2], "column": [0.2, 0.3], "meta": "str"},
        )
        chart = _chart_for(result)
        assert chart and "h2o" in chart

    def test_chart_for_no_series(self):
        from repro.bench.__main__ import _chart_for
        from repro.bench.harness import ExperimentResult

        result = ExperimentResult(
            experiment_id="x", title="t", headers=["a"], rows=[]
        )
        assert _chart_for(result) is None
