"""The interpreted evaluator and the volcano operators."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.execution.evaluator import (
    AggregateAccumulator,
    collect_aggregates,
    evaluate_predicate,
    evaluate_value,
    finalize_output,
)
from repro.execution.operators import (
    AggregateOperator,
    Chunk,
    Filter,
    LayoutScan,
    Project,
)
from repro.sql import parse_query
from repro.sql.expressions import Aggregate, AggregateFunc, col, lit


def resolver(**columns):
    arrays = {k: np.asarray(v) for k, v in columns.items()}
    return arrays.__getitem__


class TestEvaluateValue:
    def test_column_and_literal(self):
        resolve = resolver(a=[1, 2, 3])
        assert (evaluate_value(col("a"), resolve) == [1, 2, 3]).all()
        assert evaluate_value(lit(7), resolve) == 7

    def test_arithmetic(self):
        resolve = resolver(a=[1, 2], b=[10, 20])
        out = evaluate_value(col("a") + col("b") * 2, resolve)
        assert list(out) == [21, 42]

    def test_aggregate_rejected(self):
        agg = Aggregate(AggregateFunc.SUM, col("a"))
        with pytest.raises(ExecutionError):
            evaluate_value(agg, resolver(a=[1]))


class TestEvaluatePredicate:
    def test_comparison(self):
        resolve = resolver(a=[1, 5, 3])
        mask = evaluate_predicate(col("a") < 4, resolve)
        assert list(mask) == [True, False, True]

    def test_boolean_combinations(self):
        resolve = resolver(a=[1, 5, 3], b=[9, 0, 9])
        both = (col("a") < 4).__and__ if False else None
        from repro.sql.expressions import BoolConnective, BooleanOp, Not

        conj = BooleanOp(BoolConnective.AND, col("a") < 4, col("b") > 5)
        assert list(evaluate_predicate(conj, resolve)) == [True, False, True]
        disj = BooleanOp(BoolConnective.OR, col("a") > 4, col("b") > 5)
        assert list(evaluate_predicate(disj, resolve)) == [True, True, True]
        neg = Not(col("a") < 4)
        assert list(evaluate_predicate(neg, resolve)) == [False, True, False]

    def test_value_expr_rejected_as_predicate(self):
        with pytest.raises(ExecutionError):
            evaluate_predicate(col("a") + 1, resolver(a=[1]))


class TestAccumulator:
    @pytest.mark.parametrize(
        "func,values,expected",
        [
            (AggregateFunc.SUM, [1, 2, 3], 6.0),
            (AggregateFunc.MIN, [5, -2, 3], -2.0),
            (AggregateFunc.MAX, [5, -2, 3], 5.0),
            (AggregateFunc.AVG, [2, 4], 3.0),
            (AggregateFunc.COUNT, [9, 9, 9], 3.0),
        ],
    )
    def test_single_block(self, func, values, expected):
        state = AggregateAccumulator(func)
        arr = np.asarray(values)
        state.update(arr if func is not AggregateFunc.COUNT else None, len(values))
        assert state.finalize() == expected

    def test_streaming_equals_single_shot(self):
        rng = np.random.default_rng(0)
        values = rng.integers(-100, 100, 97)
        for func in (AggregateFunc.SUM, AggregateFunc.MIN, AggregateFunc.MAX):
            whole = AggregateAccumulator(func)
            whole.update(values, len(values))
            chunked = AggregateAccumulator(func)
            for start in range(0, len(values), 10):
                block = values[start : start + 10]
                chunked.update(block, len(block))
            assert whole.finalize() == chunked.finalize()

    def test_empty_semantics(self):
        assert AggregateAccumulator(AggregateFunc.SUM).finalize() == 0.0
        assert AggregateAccumulator(AggregateFunc.COUNT).finalize() == 0.0
        assert np.isnan(AggregateAccumulator(AggregateFunc.MIN).finalize())
        assert np.isnan(AggregateAccumulator(AggregateFunc.AVG).finalize())

    def test_merge(self):
        a = AggregateAccumulator(AggregateFunc.MIN)
        b = AggregateAccumulator(AggregateFunc.MIN)
        a.update(np.array([3, 4]), 2)
        b.update(np.array([1, 9]), 2)
        a.merge(b)
        assert a.finalize() == 1.0

    def test_merge_mismatch(self):
        a = AggregateAccumulator(AggregateFunc.MIN)
        b = AggregateAccumulator(AggregateFunc.MAX)
        with pytest.raises(ExecutionError):
            a.merge(b)


class TestFinalizeOutput:
    def test_arithmetic_over_aggregates(self):
        s = Aggregate(AggregateFunc.SUM, col("a"))
        m = Aggregate(AggregateFunc.MIN, col("b"))
        value = finalize_output(s - m, {s: 10.0, m: 4.0})
        assert value == 6.0

    def test_collect_deduplicates(self):
        query = parse_query("SELECT sum(a) + sum(a), min(b) FROM r")
        aggs = collect_aggregates(query.select)
        assert len(aggs) == 2


class TestOperators:
    def test_scan_produces_requested_columns(self, column_table):
        scan = LayoutScan(column_table.layouts, ("a1", "a3"), 512)
        chunks = list(scan)
        assert sum(c.num_rows for c in chunks) == column_table.num_rows
        for chunk in chunks:
            chunk.validate()
            assert set(chunk.columns) == {"a1", "a3"}

    def test_filter_compacts(self, column_table):
        scan = LayoutScan(column_table.layouts, ("a1",), 512)
        filtered = Filter(scan, col("a1") < 0)
        total = sum(chunk.num_rows for chunk in filtered)
        expected = int((column_table.column("a1") < 0).sum())
        assert total == expected

    def test_project_row_major_output(self, column_table):
        scan = LayoutScan(column_table.layouts, ("a1", "a2"), 512)
        project = Project(scan, parse_query("SELECT a1 + a2 FROM r").select)
        blocks = [c.col(Project.OUTPUT_KEY) for c in project]
        stacked = np.concatenate(blocks)
        expected = column_table.column("a1") + column_table.column("a2")
        assert (stacked[:, 0] == expected).all()

    def test_aggregate_operator(self, column_table):
        query = parse_query("SELECT sum(a1), count(*) FROM r")
        scan = LayoutScan(column_table.layouts, ("a1",), 512)
        agg = AggregateOperator(scan, query.select)
        for _ in agg:
            pass
        result = agg.result()
        assert result.scalars()[0] == pytest.approx(
            float(column_table.column("a1").sum())
        )
        assert result.scalars()[1] == column_table.num_rows

    def test_chunk_missing_column(self):
        chunk = Chunk(num_rows=1, columns={"a": np.array([1])})
        with pytest.raises(ExecutionError):
            chunk.col("b")

    def test_chunk_validate_catches_mismatch(self):
        chunk = Chunk(num_rows=2, columns={"a": np.array([1])})
        with pytest.raises(ExecutionError):
            chunk.validate()
