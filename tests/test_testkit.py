"""Tests for the testkit itself: generator, injector, oracle, shrinker.

Three layers:

1. **unit** — generator determinism, injector bookkeeping, shrinker
   minimality on synthetic predicates;
2. **per-fault** — each injection point fired in isolation surfaces as
   exactly its documented exception/counter (the contract table in
   ``repro/testkit/faults.py``);
3. **mutation** — patching any fault handler to swallow its fault
   silently must turn the oracle red (the acceptance criterion from
   docs/testing.md).  Three representative mutations are automated
   here; the manual procedure for the rest is documented.
"""

from __future__ import annotations

import pytest

from repro.config import EngineConfig
from repro.core.engine import H2OEngine
from repro.errors import (
    QueryTimeoutError,
    ReorganizationError,
    ServiceError,
)
from repro.service.service import H2OService
from repro.service.stats import ServiceStats
from repro.storage.generator import generate_table
from repro.testkit import (
    CaseSpec,
    DifferentialOracle,
    FaultInjector,
    OracleFailure,
    format_repro,
    random_case,
    run_sequence,
    shrink_case,
)
from repro.testkit.oracle import ORACLE_CONFIG
from repro.testkit.runner import main as run_testkit_cli
from repro.util import faultpoints

pytestmark = pytest.mark.oracle


def small_table(name="t", rng=11):
    return generate_table(
        name, num_attrs=6, num_rows=512, rng=rng, initial_layout="column"
    )


# ---------------------------------------------------------------------------
# Generator
# ---------------------------------------------------------------------------


def test_random_case_is_deterministic():
    assert random_case(42) == random_case(42)
    assert random_case(42) != random_case(43)


def test_generated_queries_roundtrip_through_parser():
    spec = random_case(7)
    for sql, query in zip(spec.queries, spec.parsed()):
        assert query.to_sql() == sql


def test_case_tables_are_reproducible_and_independent():
    spec = random_case(3)
    a, b = spec.build_table(), spec.build_table()
    assert a is not b
    for name in a.schema.names:
        assert (a.column(name) == b.column(name)).all()


# ---------------------------------------------------------------------------
# Fault injector
# ---------------------------------------------------------------------------


def test_injector_rejects_unknown_points():
    with pytest.raises(ValueError):
        FaultInjector({"no.such.point": frozenset({0})})


def test_injector_counts_and_fires_at_scheduled_occurrences():
    injector = FaultInjector({"codegen.compile": frozenset({1})})
    with injector:
        faultpoints.fault_point("codegen.compile")  # occurrence 0: no fire
        with pytest.raises(Exception):
            faultpoints.fault_point("codegen.compile")  # occurrence 1
        faultpoints.fault_point("codegen.compile")  # occurrence 2: no fire
    assert injector.occurrences("codegen.compile") == 3
    assert injector.fired_count("codegen.compile") == 1
    # Uninstalled: the point is a no-op again.
    faultpoints.fault_point("codegen.compile")
    assert injector.occurrences("codegen.compile") == 3


def test_injectors_cannot_overlap():
    a = FaultInjector({})
    b = FaultInjector({})
    with a:
        with pytest.raises(RuntimeError):
            b.__enter__()


# ---------------------------------------------------------------------------
# Per-fault contracts (the table in repro/testkit/faults.py)
# ---------------------------------------------------------------------------


def test_compile_fault_falls_back_to_interpreted_identically():
    sql = "SELECT sum(a1 + a2) FROM t WHERE a3 > 0"
    clean = (
        H2OEngine(small_table(), EngineConfig(use_codegen=False))
        .execute(sql)
        .result
    )
    # Fresh engine: the first execution must actually compile (a cached
    # kernel would bypass the injection point).
    engine = H2OEngine(small_table(), EngineConfig(**ORACLE_CONFIG))
    with FaultInjector({"codegen.compile": frozenset({0})}) as inj:
        faulted = engine.execute(sql).result
    assert inj.fired_count("codegen.compile") == 1
    assert engine.executor.codegen_fallbacks == 1
    assert faulted.rows() == clean.rows()


def test_offline_stitch_abort_publishes_nothing():
    table = small_table()
    engine = H2OEngine(table, EngineConfig(**ORACLE_CONFIG))
    epoch_before = table.layout_epoch
    layouts_before = len(table.layouts)
    with FaultInjector({"reorg.offline": frozenset({0})}):
        with pytest.raises(ReorganizationError):
            engine.reorganizer.offline(table.snapshot(), ("a1", "a2"))
    assert table.layout_epoch == epoch_before
    assert len(table.layouts) == layouts_before
    # Retry without the fault succeeds (the abort was transient).
    outcome = engine.reorganizer.offline(table.snapshot(), ("a1", "a2"))
    assert engine.publish_group(outcome.group, outcome.seconds)
    assert table.find_group(("a1", "a2")) is not None


def test_online_stitch_abort_still_answers_and_is_counted():
    table = small_table()
    engine = H2OEngine(table, EngineConfig(**ORACLE_CONFIG))
    sql = "SELECT sum(a1 + a2) FROM t WHERE a3 > 0"
    reference = H2OEngine(
        small_table(), EngineConfig(use_codegen=False)
    ).execute(sql).result
    # Schedule every early online-stitch occurrence to abort; the hot
    # shape below triggers an online reorganization within the window.
    with FaultInjector({"reorg.online": frozenset(range(8))}) as inj:
        for _ in range(12):
            got = engine.execute(sql).result
            assert got.rows() == reference.rows()
    assert inj.fired_count("reorg.online") >= 1
    assert engine.reorg_aborts == inj.fired_count("reorg.online")


def test_worker_death_is_absorbed_and_pool_heals():
    """PR 4 semantics: a death requeues the ticket — the waiter still
    gets the answer — and the watchdog restores pool strength."""
    import time as _time

    service = H2OService(config=EngineConfig(), num_workers=1, max_pending=8)
    service.register(small_table("r", rng=2))
    try:
        with FaultInjector({"service.worker": frozenset({0})}) as inj:
            report = service.execute("SELECT sum(a1) FROM r", timeout=30.0)
            assert report.result.num_rows == 1
        assert inj.fired_count("service.worker") == 1
        snap = service.stats.snapshot()
        assert snap["worker_deaths"] == 1
        assert snap["requeued_deaths"] == 1
        assert snap["failed"] == 0
        deadline = _time.monotonic() + 5.0
        while service.alive_workers() < 1 and _time.monotonic() < deadline:
            _time.sleep(0.01)
        assert service.alive_workers() == 1
    finally:
        service.close()


def test_worker_death_surfaces_once_attempt_budget_is_exhausted():
    """With a budget of one attempt the documented ServiceError still
    reaches the waiter — the retry ladder is bounded, not infinite."""
    service = H2OService(
        config=EngineConfig(),
        num_workers=1,
        max_pending=8,
        max_query_attempts=1,
    )
    service.register(small_table("r", rng=2))
    try:
        with FaultInjector({"service.worker": frozenset({0})}) as inj:
            with pytest.raises(ServiceError, match="worker died"):
                service.execute("SELECT sum(a1) FROM r", timeout=30.0)
            # The watchdog-respawned worker serves the next query.
            report = service.execute("SELECT count(*) FROM r", timeout=30.0)
            assert report.result.scalars() == (512,)
        assert inj.fired_count("service.worker") == 1
        assert service.stats.snapshot()["worker_deaths"] == 1
    finally:
        service.close()


def test_transient_execute_failure_is_retried_and_absorbed():
    """An injected (retryable) execution failure is requeued within the
    attempt budget; the waiter never sees it."""
    service = H2OService(config=EngineConfig(), num_workers=1, max_pending=8)
    service.register(small_table("r", rng=2))
    try:
        with FaultInjector({"service.execute": frozenset({0})}) as inj:
            report = service.execute("SELECT sum(a1) FROM r", timeout=30.0)
            assert report.result.num_rows == 1
        assert inj.fired_count("service.execute") == 1
        snap = service.stats.snapshot()
        assert snap["retried_failures"] == 1
        assert snap["failed"] == 0
    finally:
        service.close()


def test_transient_failure_exhausting_budget_surfaces_to_waiter():
    """Every attempt failing transiently still surfaces the error once
    the budget runs out."""
    service = H2OService(
        config=EngineConfig(),
        num_workers=1,
        max_pending=8,
        max_query_attempts=2,
    )
    service.register(small_table("r", rng=2))
    try:
        with FaultInjector({"service.execute": frozenset({0, 1})}) as inj:
            with pytest.raises(QueryTimeoutError):
                service.execute("SELECT sum(a1) FROM r", timeout=30.0)
        assert inj.fired_count("service.execute") == 2
        snap = service.stats.snapshot()
        assert snap["retried_failures"] == 1
        assert snap["failed"] == 1
    finally:
        service.close()


# ---------------------------------------------------------------------------
# The oracle end to end
# ---------------------------------------------------------------------------


def test_oracle_smoke_three_sequences():
    for seed in (0, 1, 2):
        result = run_sequence(seed)
        assert result.queries_checked > 0


def test_oracle_detects_a_wrong_answer():
    """A query the reference answers differently must go red."""
    spec = random_case(0)
    oracle = DifferentialOracle(with_faults=False)

    class LyingOracle(DifferentialOracle):
        def reference_results(self, case):
            results = super().reference_results(case)
            results[0].data[...] = results[0].data + 1  # corrupt truth
            return results

    with pytest.raises(OracleFailure, match="diverged"):
        LyingOracle(with_faults=False).run_case(spec)
    oracle.run_case(spec)  # sanity: the honest oracle stays green


# ---------------------------------------------------------------------------
# Mutation checks: swallowing any fault silently turns the oracle red
# ---------------------------------------------------------------------------


def test_mutation_erased_codegen_fallback_counter_fails_oracle(monkeypatch):
    """Seed 0 fires compile faults in the inline pass; erasing the
    fallback evidence must fail the evidence audit."""
    from repro.execution.executor import Executor

    orig = Executor.run_plan

    def swallowing(self, info, plan, **kwargs):
        before = self.codegen_fallbacks
        outcome = orig(self, info, plan, **kwargs)
        self.codegen_fallbacks = before  # the mutation: evidence erased
        return outcome

    monkeypatch.setattr(Executor, "run_plan", swallowing)
    with pytest.raises(OracleFailure, match="swallowed silently"):
        run_sequence(0)


def test_mutation_uncounted_worker_death_fails_oracle(monkeypatch):
    """Seed 0 kills a worker in the service pass; a death the stats
    never count must fail the evidence audit."""
    monkeypatch.setattr(
        ServiceStats, "note_worker_death", lambda self: None
    )
    with pytest.raises(OracleFailure, match="worker_deaths"):
        run_sequence(0)


def test_mutation_uncounted_online_abort_fails_oracle(monkeypatch):
    """Seed 13 aborts an online stitch in the inline pass; erasing the
    engine's abort counter must fail the evidence audit."""
    orig = H2OEngine.execute

    def swallowing(self, query, **kwargs):
        report = orig(self, query, **kwargs)
        self.reorg_aborts = 0  # the mutation: evidence erased
        return report

    monkeypatch.setattr(H2OEngine, "execute", swallowing)
    with pytest.raises(OracleFailure, match="swallowed silently"):
        run_sequence(13)


# ---------------------------------------------------------------------------
# Shrinking + repro formatting
# ---------------------------------------------------------------------------


def test_shrinker_minimizes_queries_and_rows():
    spec = random_case(9)
    assert len(spec.queries) > 1

    def fails(candidate: CaseSpec) -> bool:
        return any("sum" in sql for sql in candidate.queries)

    small = shrink_case(spec, fails)
    assert len(small.queries) == 1
    assert "sum" in small.queries[0]
    assert small.num_rows == 1
    assert fails(small)


def test_shrinker_returns_original_when_not_reproducible():
    spec = random_case(9)
    assert shrink_case(spec, lambda _c: False) == spec


def test_format_repro_is_at_most_ten_lines():
    for seed in (0, 1, 9):
        text = format_repro(random_case(seed))
        assert len(text.splitlines()) <= 10
        assert f"--seed {seed}" in text


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_run_green(capsys):
    assert run_testkit_cli(["run", "--seqs", "2", "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "2 sequences" in out


def test_cli_repro_single_case(capsys):
    assert (
        run_testkit_cli(
            [
                "repro",
                "--seed",
                "1",
                "--attrs",
                "4",
                "--rows",
                "64",
                "SELECT sum(a1) FROM t",
            ]
        )
        == 0
    )
    assert "ok:" in capsys.readouterr().out


def test_attribute_free_query_covering_layouts():
    """Regression: ``SELECT count(*)`` needs a row count from a layout."""
    table = small_table()
    cover = table.covering_layouts(())
    assert len(cover) == 1
    engine = H2OEngine(table, EngineConfig())
    assert engine.execute("SELECT count(*) FROM t").result.scalars() == (
        512,
    )
