"""Property-based tests for the SQL layer (hypothesis).

Invariants:
- any generated query renders to SQL that parses back to the same AST;
- signatures are stable under render→parse;
- masked SQL is constant-invariant.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.codegen.exprc import masked_sql
from repro.sql import parse_query
from repro.sql.builder import QueryBuilder
from repro.sql.expressions import (
    Aggregate,
    AggregateFunc,
    Arithmetic,
    ArithmeticOp,
    BoolConnective,
    BooleanOp,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expr,
    Literal,
    Not,
)
from repro.sql.query import OutputColumn, Query

ATTRS = [f"a{i}" for i in range(1, 9)]

literals = st.one_of(
    st.integers(min_value=-(10**6), max_value=10**6).map(Literal),
    st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ).map(lambda v: Literal(round(v, 6))),
)
column_refs = st.sampled_from(ATTRS).map(ColumnRef)


def value_exprs(depth=3):
    base = st.one_of(column_refs, literals)
    if depth == 0:
        return base
    sub = value_exprs(depth - 1)
    return st.one_of(
        base,
        st.builds(
            Arithmetic,
            st.sampled_from(list(ArithmeticOp)),
            sub,
            sub,
        ),
    )


def predicates(depth=2):
    comparison = st.builds(
        Comparison,
        st.sampled_from(list(ComparisonOp)),
        value_exprs(1),
        value_exprs(1),
    )
    if depth == 0:
        return comparison
    sub = predicates(depth - 1)
    return st.one_of(
        comparison,
        st.builds(
            BooleanOp, st.sampled_from(list(BoolConnective)), sub, sub
        ),
        st.builds(Not, sub),
    )


aggregates = st.one_of(
    st.builds(
        Aggregate,
        st.sampled_from(
            [
                AggregateFunc.SUM,
                AggregateFunc.MIN,
                AggregateFunc.MAX,
                AggregateFunc.AVG,
            ]
        ),
        value_exprs(2),
    ),
    st.just(Aggregate(AggregateFunc.COUNT, None)),
)


def queries():
    projection = st.lists(value_exprs(2), min_size=1, max_size=4).map(
        lambda exprs: Query(
            "r", tuple(OutputColumn(e) for e in exprs), None
        )
    )
    aggregation = st.lists(aggregates, min_size=1, max_size=4).map(
        lambda aggs: Query("r", tuple(OutputColumn(a) for a in aggs), None)
    )
    shapes = st.one_of(projection, aggregation)
    return st.builds(
        lambda query, where: Query(query.table, query.select, where),
        shapes,
        st.one_of(st.none(), predicates(2)),
    )


@given(queries())
@settings(max_examples=200, deadline=None)
def test_render_parse_roundtrip(query):
    rendered = query.to_sql()
    reparsed = parse_query(rendered)
    assert reparsed.select == query.select
    assert reparsed.where == query.where


@given(queries())
@settings(max_examples=100, deadline=None)
def test_signature_stable_under_roundtrip(query):
    reparsed = parse_query(query.to_sql())
    assert reparsed.signature() == query.signature()


@given(predicates(2), st.integers(-1000, 1000), st.integers(-1000, 1000))
@settings(max_examples=100, deadline=None)
def test_masked_sql_constant_invariant(predicate, first, second):
    def replace_literals(expr: Expr, value):
        if isinstance(expr, Literal):
            return Literal(value)
        if isinstance(expr, Arithmetic):
            return Arithmetic(
                expr.op,
                replace_literals(expr.left, value),
                replace_literals(expr.right, value),
            )
        if isinstance(expr, Comparison):
            return Comparison(
                expr.op,
                replace_literals(expr.left, value),
                replace_literals(expr.right, value),
            )
        if isinstance(expr, BooleanOp):
            return BooleanOp(
                expr.op,
                replace_literals(expr.left, value),
                replace_literals(expr.right, value),
            )
        if isinstance(expr, Not):
            return Not(replace_literals(expr.child, value))
        return expr

    assert masked_sql(replace_literals(predicate, first)) == masked_sql(
        replace_literals(predicate, second)
    )


@given(st.lists(st.sampled_from(ATTRS), min_size=1, max_size=6, unique=True))
@settings(max_examples=50, deadline=None)
def test_builder_projection_attrs(names):
    query = QueryBuilder("r").select_columns(names).build()
    assert query.select_attributes == frozenset(names)
