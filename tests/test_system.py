"""The multi-table H2OSystem facade."""

import pytest

from repro import Catalog, H2OSystem, generate_table
from repro.errors import CatalogError


@pytest.fixture()
def system():
    sys_ = H2OSystem()
    sys_.register(generate_table("orders", 6, 2000, rng=1))
    sys_.register(generate_table("events", 4, 1500, rng=2))
    return sys_


class TestRouting:
    def test_routes_by_from_table(self, system):
        first = system.execute("SELECT count(*) FROM orders")
        second = system.execute("SELECT count(*) FROM events")
        assert first.result.scalars()[0] == 2000
        assert second.result.scalars()[0] == 1500

    def test_unknown_table(self, system):
        with pytest.raises(CatalogError):
            system.execute("SELECT a1 FROM ghosts")

    def test_engines_created_lazily(self, system):
        assert system._engines == {}
        system.execute("SELECT a1 FROM orders")
        assert set(system._engines) == {"orders"}

    def test_per_table_adaptation_state(self, system):
        for _ in range(3):
            system.execute("SELECT sum(a1 + a2) FROM orders WHERE a3 < 0")
            system.execute("SELECT a1 FROM events")
        orders_engine = system.engine_for("orders")
        events_engine = system.engine_for("events")
        assert orders_engine is not events_engine
        assert len(orders_engine.reports) == 3
        assert len(events_engine.reports) == 3

    def test_run_sequence_mixed_tables(self, system):
        reports = system.run_sequence(
            ["SELECT a1 FROM orders", "SELECT a1 FROM events"]
        )
        assert len(reports) == 2
        assert system.cumulative_seconds() > 0


class TestCatalogLifecycle:
    def test_register_replace_resets_engine(self, system):
        system.execute("SELECT a1 FROM orders")
        fresh = generate_table("orders", 6, 100, rng=9)
        system.register(fresh, replace=True)
        report = system.execute("SELECT count(*) FROM orders")
        assert report.result.scalars()[0] == 100

    def test_drop_removes_engine(self, system):
        system.execute("SELECT a1 FROM orders")
        system.drop("orders")
        with pytest.raises(CatalogError):
            system.execute("SELECT a1 FROM orders")

    def test_describe(self, system):
        assert "no queries yet" in system.describe()
        system.execute("SELECT a1 FROM orders")
        assert "window size" in system.describe()

    def test_external_catalog(self):
        catalog = Catalog()
        catalog.register(generate_table("t", 3, 500, rng=0))
        system = H2OSystem(catalog)
        assert system.execute("SELECT count(*) FROM t").result.scalars()[0] == 500
