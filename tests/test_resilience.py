"""Unit + acceptance tests for the self-healing runtime (docs/resilience.md).

Covers every rung of the degradation ladder in isolation with fake
clocks (no sleeps in the state-machine tests) and then end to end:

- the per-signature codegen circuit breaker FSM;
- the exponential-backoff quarantine list;
- the watchdog's token-bucket respawn budget;
- the engine acceptance test: with a permanently failing compiler the
  breaker *stops compile attempts* (asserted via the fault-point
  occurrence counter) while queries keep answering correctly through
  the interpreted path, and a half-open probe re-closes the breaker
  once the compiler heals;
- error-taxonomy retryability, per-waiter exception clones, deadline
  propagation, the overload ladder, worker respawn, degraded-query
  accounting, and the service health report.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import H2OService, generate_table
from repro.config import EngineConfig
from repro.core.engine import H2OEngine
from repro.core.system import H2OSystem
from repro.errors import (
    CodegenError,
    ExecutionError,
    H2OError,
    QueryTimeoutError,
    ReorganizationError,
    ServiceError,
    ServiceOverloadedError,
    ServiceClosedError,
)
from repro.resilience import (
    CircuitBreaker,
    HealthReport,
    QuarantineList,
    TokenBucket,
)
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN
from repro.testkit.faults import FaultInjector


@pytest.fixture()
def table():
    return generate_table("r", num_attrs=8, num_rows=2000, rng=7)


def expected_sum(table, value_attr, where_attr):
    values = np.asarray(table.column(value_attr), dtype=np.float64)
    mask = np.asarray(table.column(where_attr)) > 0
    return float(values[mask].sum())


# ---------------------------------------------------------------------------
# Circuit breaker state machine (fake clock, zero sleeps)
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def make(self, threshold=2, cooldown=10.0):
        now = [0.0]
        breaker = CircuitBreaker(
            threshold=threshold, cooldown=cooldown, clock=lambda: now[0]
        )
        return breaker, now

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0.0)

    def test_opens_after_consecutive_failures_only(self):
        breaker, _ = self.make(threshold=2)
        breaker.record_failure("sig")
        breaker.record_success("sig")  # resets the consecutive count
        breaker.record_failure("sig")
        assert breaker.state("sig") == CLOSED
        breaker.record_failure("sig")
        assert breaker.state("sig") == OPEN
        assert breaker.opens == 1

    def test_open_short_circuits_until_cooldown(self):
        breaker, now = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure("sig")
        assert not breaker.allow("sig")
        assert not breaker.allow("sig")
        assert breaker.short_circuits == 2
        now[0] = 9.999
        assert not breaker.allow("sig")
        now[0] = 10.0
        assert breaker.allow("sig")  # the half-open probe
        assert breaker.state("sig") == HALF_OPEN
        assert breaker.probes == 1

    def test_single_probe_failed_probe_reopens(self):
        breaker, now = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure("sig")
        now[0] = 10.0
        assert breaker.allow("sig")
        # Only one probe at a time: a second caller is short-circuited.
        assert not breaker.allow("sig")
        breaker.record_failure("sig")  # the probe failed
        assert breaker.state("sig") == OPEN
        assert breaker.opens == 2
        now[0] = 15.0
        assert not breaker.allow("sig")  # a fresh full cooldown applies
        now[0] = 20.0
        assert breaker.allow("sig")
        breaker.record_success("sig")
        assert breaker.state("sig") == CLOSED
        assert breaker.closes == 1
        assert breaker.open_keys() == []

    def test_lost_probe_expires_instead_of_wedging(self):
        breaker, now = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure("sig")
        now[0] = 10.0
        assert breaker.allow("sig")  # probe granted ... and never reports
        now[0] = 19.0
        assert not breaker.allow("sig")
        now[0] = 20.0
        assert breaker.allow("sig")  # probe slot expired: a fresh probe
        assert breaker.probes == 2

    def test_keys_are_independent(self):
        breaker, _ = self.make(threshold=1)
        breaker.record_failure("a")
        assert not breaker.allow("a")
        assert breaker.allow("b")
        snap = breaker.snapshot()
        assert snap["tracked"] == 1 and snap["open"] == ("a",)


# ---------------------------------------------------------------------------
# Quarantine list (query-counter clock)
# ---------------------------------------------------------------------------


class TestQuarantine:
    def test_validation(self):
        with pytest.raises(ValueError):
            QuarantineList(base=0.0)
        with pytest.raises(ValueError):
            QuarantineList(base=8.0, cap=4.0)

    def test_exponential_backoff_caps_and_resets(self):
        now = [0.0]
        quarantine = QuarantineList(base=4.0, cap=16.0, clock=lambda: now[0])
        key = frozenset({"a1", "a2"})
        assert quarantine.note_failure(key) == 4.0
        assert quarantine.note_failure(key) == 8.0
        assert quarantine.note_failure(key) == 16.0
        assert quarantine.note_failure(key) == 16.0  # capped
        assert quarantine.events == 4
        assert quarantine.blocked(key)
        now[0] = 15.0
        assert quarantine.blocked(key)
        now[0] = 16.0
        assert not quarantine.blocked(key)
        # One success clears the history entirely: backoff restarts.
        quarantine.note_failure(key)
        quarantine.note_success(key)
        assert quarantine.note_failure(key) == 4.0

    def test_snapshot_renders_frozensets_stably(self):
        quarantine = QuarantineList(base=4.0, clock=lambda: 0.0)
        quarantine.note_failure(frozenset({"b", "a"}))
        snap = quarantine.snapshot()
        assert snap["blocked"] == ("a,b",)
        assert snap["tracked"] == 1


# ---------------------------------------------------------------------------
# Token bucket (the respawn budget)
# ---------------------------------------------------------------------------


class TestTokenBucket:
    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(burst=0)
        with pytest.raises(ValueError):
            TokenBucket(burst=1, window=0.0)

    def test_burst_then_continuous_refill(self):
        now = [0.0]
        bucket = TokenBucket(burst=2, window=1.0, clock=lambda: now[0])
        assert bucket.try_take() and bucket.try_take()
        assert not bucket.try_take()  # dry: the action is deferred
        now[0] = 0.5  # refills burst/window * 0.5 = 1 token
        assert bucket.try_take()
        assert not bucket.try_take()
        assert bucket.granted == 3 and bucket.deferred == 2
        now[0] = 100.0  # refill clamps at the burst size
        assert bucket.available() == pytest.approx(2.0)


# ---------------------------------------------------------------------------
# Error taxonomy
# ---------------------------------------------------------------------------


class TestRetryability:
    def test_transient_errors_are_retryable(self):
        assert ReorganizationError("x").is_retryable
        assert QueryTimeoutError("x").is_retryable
        assert ServiceOverloadedError("x").is_retryable

    def test_permanent_errors_are_not(self):
        for exc in (
            H2OError("x"),
            CodegenError("x"),
            ExecutionError("x"),
            ServiceError("x"),
            ServiceClosedError("x"),
        ):
            assert not exc.is_retryable


# ---------------------------------------------------------------------------
# Engine acceptance: the breaker stops compile attempts, answers stay right
# ---------------------------------------------------------------------------


class TestEngineBreaker:
    SQL = "SELECT sum(a1) FROM r WHERE a2 > 0"

    def test_breaker_stops_compile_attempts_and_probe_recloses(self, table):
        now = [0.0]
        config = EngineConfig(
            use_codegen=True,
            breaker_threshold=2,
            breaker_cooldown=10.0,
        )
        engine = H2OEngine(table, config, clock=lambda: now[0])
        want = expected_sum(table, "a1", "a2")

        injector = FaultInjector({"codegen.compile": frozenset(range(1000))})
        with injector:
            # Every compile fails; the first `threshold` queries fall
            # back per-query, then the breaker opens.
            for index in range(6):
                report = engine.execute(self.SQL)
                assert report.result.scalars()[0] == pytest.approx(want)
                assert report.degraded
                if index < 2:
                    assert report.codegen_fallback
                else:
                    assert report.breaker_short_circuit
            attempts_after_open = injector.occurrences("codegen.compile")
            # The acceptance criterion: attempts STOP once the breaker
            # opens — repeats are served interpreted without touching
            # the compiler at all.
            for _ in range(4):
                engine.execute(self.SQL)
            assert (
                injector.occurrences("codegen.compile")
                == attempts_after_open
            )
            assert engine.breaker.open_keys()
            assert engine.breaker.short_circuits >= 8

            # After the cooldown exactly one probe goes through — and
            # fails again, re-opening the breaker.
            now[0] = 10.0
            report = engine.execute(self.SQL)
            assert report.codegen_fallback
            assert (
                injector.occurrences("codegen.compile")
                == attempts_after_open + 1
            )

        # The compiler heals (injector uninstalled).  After another
        # cooldown the next probe succeeds and the breaker closes.
        now[0] = 20.0
        report = engine.execute(self.SQL)
        assert report.result.scalars()[0] == pytest.approx(want)
        assert not report.degraded
        assert engine.breaker.open_keys() == []
        assert engine.breaker.closes == 1

    def test_degraded_plans_are_never_cached(self, table):
        engine = H2OEngine(table, EngineConfig(use_codegen=True))
        with FaultInjector({"codegen.compile": frozenset(range(1000))}):
            engine.execute(self.SQL)
            engine.execute(self.SQL)
        # Were a degraded plan cached, the repeat would bypass _run_plan's
        # breaker bookkeeping; the breaker saw both failures.
        assert engine.breaker.state(
            engine.reports[0].query.shape_signature()
        ) in (OPEN, CLOSED)
        assert engine.executor.codegen_fallbacks == 2

    def test_breaker_can_be_disabled(self, table):
        engine = H2OEngine(
            table, EngineConfig(use_codegen=True, codegen_breaker=False)
        )
        injector = FaultInjector({"codegen.compile": frozenset(range(1000))})
        with injector:
            for _ in range(5):
                engine.execute(self.SQL)
        # Without the breaker every repeat pays a doomed compile attempt.
        assert injector.occurrences("codegen.compile") == 5
        assert engine.breaker.opens == 0


# ---------------------------------------------------------------------------
# Deadline propagation
# ---------------------------------------------------------------------------


class TestDeadlines:
    def test_expired_deadline_aborts_at_stage_boundary(self, table):
        system = H2OSystem(config=EngineConfig())
        system.register(table)
        engine = system.engine_for("r")
        with pytest.raises(QueryTimeoutError, match="deadline passed"):
            system.execute(
                "SELECT sum(a1) FROM r", deadline=time.monotonic() - 1.0
            )
        assert engine.deadline_aborts == 1

    def test_far_deadline_is_harmless(self, table):
        system = H2OSystem(config=EngineConfig())
        system.register(table)
        report = system.execute(
            "SELECT sum(a1) FROM r", deadline=time.monotonic() + 60.0
        )
        assert report.result.scalars()
        assert system.engine_for("r").deadline_aborts == 0


# ---------------------------------------------------------------------------
# Service: waiter isolation, overload ladder, respawn, health
# ---------------------------------------------------------------------------


def make_service(table, **kwargs):
    kwargs.setdefault("config", EngineConfig())
    service = H2OService(**kwargs)
    service.register(table)
    return service


def wait_until(predicate, timeout=10.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestWaiterIsolation:
    def test_each_waiter_gets_a_fresh_exception_clone(self, table):
        service = make_service(
            table, num_workers=1, max_query_attempts=1
        )
        try:
            with FaultInjector({"service.worker": frozenset({0})}):
                future = service.submit("SELECT sum(a1) FROM r")
                with pytest.raises(ServiceError, match="worker died") as one:
                    future.result(timeout=30.0)
            with pytest.raises(ServiceError, match="worker died") as two:
                future.result(timeout=30.0)
            # Distinct instances (no shared mutating __traceback__) ...
            assert one.value is not two.value
            assert type(one.value) is type(two.value)
            # ... chained to the SAME stored original, which still
            # carries the worker-side cause.
            assert one.value.__cause__ is two.value.__cause__
            assert isinstance(one.value.__cause__.__cause__, RuntimeError)
        finally:
            service.close()


class TestOverloadLadder:
    def test_load_pauses_then_resumes_background_adaptation(self, table):
        service = make_service(
            table,
            config=EngineConfig(adaptation_mode="background"),
            num_workers=0,
            max_pending=8,
        )
        try:
            scheduler = service.scheduler
            assert scheduler is not None and not scheduler.paused
            service.admission._in_flight = 6  # 75% of capacity
            service._note_load()
            assert scheduler.paused
            service.admission._in_flight = 6
            service._note_load()
            assert scheduler.pauses == 1  # pause is idempotent
            service.admission._in_flight = 5  # inside the hysteresis gap
            service._note_load()
            assert scheduler.paused
            service.admission._in_flight = 2  # 25%: resume
            service._note_load()
            assert not scheduler.paused
        finally:
            service.admission._in_flight = 0
            service.close()

    def test_paused_scheduler_does_no_work(self, table):
        service = make_service(
            table,
            config=EngineConfig(adaptation_mode="background"),
            num_workers=0,
        )
        try:
            scheduler = service.scheduler
            scheduler.pause()
            assert scheduler.run_cycle() == 0
            stats = scheduler.stats()
            assert stats["paused"] and stats["pauses"] == 1
            scheduler.resume()
            assert not scheduler.paused
        finally:
            service.close()


class TestWorkerRespawn:
    def test_watchdog_restores_full_strength_after_deaths(self, table):
        service = make_service(table, num_workers=3)
        try:
            with FaultInjector({"service.worker": frozenset({0, 1})}):
                report = service.execute(
                    "SELECT sum(a1) FROM r", timeout=60.0
                )
            assert report.result.scalars()
            snap = service.stats.snapshot()
            assert snap["worker_deaths"] == 2
            assert snap["requeued_deaths"] == 2
            assert snap["failed"] == 0
            assert wait_until(lambda: service.alive_workers() == 3)
            assert service.stats.snapshot()["worker_respawns"] >= 2
            # The pool still serves queries after healing.
            report = service.execute("SELECT sum(a2) FROM r", timeout=60.0)
            assert report.result.scalars()
        finally:
            service.close()


class TestDegradedAccounting:
    def test_codegen_fallback_counts_as_degraded_not_failed(self, table):
        service = make_service(
            table, config=EngineConfig(use_codegen=True), num_workers=1
        )
        try:
            with FaultInjector({"codegen.compile": frozenset({0})}):
                report = service.execute(
                    "SELECT sum(a1) FROM r WHERE a2 > 0", timeout=60.0
                )
            assert report.result.scalars()[0] == pytest.approx(
                expected_sum(table, "a1", "a2")
            )
            assert report.codegen_fallback and report.degraded
            snap = service.stats.snapshot()
            assert snap["degraded"] == 1
            assert snap["failed"] == 0 and snap["completed"] == 1
        finally:
            service.close()


class TestHealthReport:
    def test_healthy_then_degraded_then_closed(self, table):
        service = make_service(
            table, config=EngineConfig(use_codegen=True), num_workers=2
        )
        try:
            service.execute("SELECT sum(a1) FROM r", timeout=60.0)
            health = service.health()
            assert isinstance(health, HealthReport)
            assert health.status == "healthy"
            assert health.workers_alive == 2
            assert health.open_breakers == ()
            assert "health: healthy" in health.describe()

            # Open a breaker: the service reports degraded while still
            # answering every query.
            threshold = service.system.config.breaker_threshold
            with FaultInjector(
                {"codegen.compile": frozenset(range(1000))}
            ):
                for _ in range(threshold + 1):
                    report = service.execute(
                        "SELECT sum(a1) FROM r WHERE a2 > 0", timeout=60.0
                    )
                    assert report.result.scalars()
            health = service.health()
            assert health.status == "degraded"
            assert health.open_breakers
            assert health.codegen_fallbacks == threshold
            assert health.breaker_short_circuits >= 1
            counters = health.counters()
            assert counters["degraded_queries"] >= threshold + 1
            assert "open breakers" in health.describe()
        finally:
            service.close()
        assert service.health().status == "closed"

    def test_counters_cover_every_ladder_rung(self, table):
        with make_service(table, num_workers=1) as service:
            counters = service.health().counters()
        for key in (
            "worker_deaths",
            "worker_respawns",
            "requeued_deaths",
            "retried_failures",
            "degraded_queries",
            "scheduler_pauses",
            "stitch_failures",
            "codegen_fallbacks",
            "breaker_short_circuits",
            "reorg_aborts",
            "deadline_aborts",
        ):
            assert key in counters
