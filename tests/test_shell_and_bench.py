"""The interactive shell, the bench harness, and the report recorder."""

import io

import pytest

from repro.bench.harness import (
    ExperimentResult,
    available_experiments,
    get_experiment,
    warm_table,
)
from repro.bench.report import PAPER_CLAIMS, render_markdown
from repro.core.engine import H2OEngine
from repro.errors import BenchmarkError
from repro.shell import run_shell
from repro.storage import generate_table


@pytest.fixture()
def shell_engine():
    return H2OEngine(generate_table("r", 6, 2000, rng=3))


def run_lines(engine, text):
    import contextlib

    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        run_shell(engine, stream=io.StringIO(text))
    return out.getvalue()


class TestShell:
    def test_select_prints_result_and_timing(self, shell_engine):
        output = run_lines(
            shell_engine, "SELECT sum(a1) FROM r\n\\quit\n"
        )
        assert "sum(a1)" in output
        assert "[late]" in output or "[fused]" in output

    def test_projection_row_cap(self, shell_engine):
        output = run_lines(shell_engine, "SELECT a1 FROM r\n")
        assert "rows total" in output

    def test_meta_commands(self, shell_engine):
        output = run_lines(
            shell_engine,
            "\\help\n\\layouts\n\\status\n"
            "SELECT a1 FROM r WHERE a2 < 0\n\\history\n\\quit\n",
        )
        assert "physical layouts" in output or "column[a1]" in output
        assert "window size" in output
        assert "q  0" in output

    def test_plan_and_source(self, shell_engine):
        output = run_lines(
            shell_engine,
            "\\plan SELECT sum(a1) FROM r WHERE a2 < 0\n"
            "\\source SELECT sum(a1) FROM r WHERE a2 < 0\n",
        )
        assert "est" in output
        assert "def kernel" in output

    def test_error_recovery(self, shell_engine):
        output = run_lines(
            shell_engine, "SELECT nope FROM r\nSELECT a1 FROM r\n"
        )
        assert "error:" in output
        assert "rows total" in output  # the second query still ran

    def test_unknown_meta_command(self, shell_engine):
        output = run_lines(shell_engine, "\\wat\n")
        assert "unknown command" in output


class TestHarness:
    def test_registry_lists_all_figures(self):
        listing = "\n".join(available_experiments())
        for experiment_id in (
            "fig1", "fig2a", "fig2b", "fig2c", "fig7", "table1", "fig8",
            "fig9", "fig10a", "fig10b", "fig10c", "fig10d", "fig10e",
            "fig10f", "fig11", "fig12", "fig13", "fig14", "ablation",
        ):
            assert f"{experiment_id}:" in listing

    def test_unknown_experiment(self):
        with pytest.raises(BenchmarkError):
            get_experiment("fig99")

    def test_warm_table_touches_all_layouts(self, column_table):
        checksum = warm_table(column_table)
        assert isinstance(checksum, int)

    def test_result_render(self):
        result = ExperimentResult(
            experiment_id="x",
            title="t",
            headers=["a", "b"],
            rows=[[1, 2.5]],
            notes=["hello"],
        )
        text = result.render()
        assert "== x: t ==" in text
        assert "note: hello" in text


class TestReport:
    def test_every_experiment_has_a_paper_claim(self):
        ids = [line.split(":")[0] for line in available_experiments()]
        for experiment_id in ids:
            assert experiment_id in PAPER_CLAIMS, experiment_id

    def test_render_markdown_structure(self):
        result = ExperimentResult(
            experiment_id="fig13",
            title="online vs offline",
            headers=["case", "s"],
            rows=[["Q1", 0.1]],
        )
        markdown = render_markdown([result])
        assert "# EXPERIMENTS" in markdown
        assert "## fig13: online vs offline" in markdown
        assert "**Paper:**" in markdown
        assert "```" in markdown
