"""Property-based execution tests: random queries over random data must
agree across every execution path and match a naive numpy reference."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.config import EngineConfig
from repro.execution import Executor, SelectionVector, enumerate_plans
from repro.sql import analyze_query
from repro.sql.builder import QueryBuilder
from repro.sql.expressions import col
from repro.storage import Schema, Table
from repro.storage.stitcher import stitch_group

ATTRS = ("a", "b", "c", "d")


@st.composite
def tables_and_queries(draw):
    num_rows = draw(st.integers(min_value=0, max_value=300))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    columns = {
        name: rng.integers(-1000, 1000, size=num_rows, dtype=np.int64)
        for name in ATTRS
    }
    schema = Schema.from_names(ATTRS)

    select_attrs = draw(
        st.lists(st.sampled_from(ATTRS), min_size=1, max_size=3, unique=True)
    )
    aggregate = draw(st.booleans())
    builder = QueryBuilder("r")
    if aggregate:
        for name in select_attrs:
            builder.select_sum(name)
        builder.select_count()
    else:
        builder.select_columns(select_attrs)
    has_where = draw(st.booleans())
    threshold = draw(st.integers(-1200, 1200))
    where_attr = draw(st.sampled_from(ATTRS))
    if has_where:
        builder.where(col(where_attr) < threshold)
    query = builder.build()
    return schema, columns, num_rows, query, (
        where_attr if has_where else None
    ), threshold


@given(tables_and_queries())
@settings(max_examples=60, deadline=None)
def test_every_path_matches_numpy(case):
    schema, columns, num_rows, query, where_attr, threshold = case
    if num_rows == 0:
        return  # Table requires at least one row via layouts; covered elsewhere

    column_table = Table.from_columns("r", schema, columns, "column")
    row_table = Table.from_columns("r", schema, columns, "row")
    mixed = Table.from_columns("r", schema, columns, "column")
    group, _ = stitch_group(mixed.layouts, ("a", "b"), schema)
    mixed.add_layout(group)

    mask = (
        columns[where_attr] < threshold
        if where_attr is not None
        else np.ones(num_rows, dtype=bool)
    )
    executors = [
        Executor(EngineConfig()),
        Executor(EngineConfig(use_codegen=False)),
        Executor(EngineConfig(vector_size=37)),
    ]

    results = []
    for table in (column_table, row_table, mixed):
        info = analyze_query(query, table.schema)
        for plan in enumerate_plans(table, info):
            for executor in executors:
                result, _stats = executor.run_plan(info, plan)
                results.append(result)

    # Numpy ground truth.
    reference = results[0]
    if query.is_aggregation:
        expected = []
        for out in query.select[:-1]:
            name = next(iter(out.expr.columns()))
            expected.append(float(columns[name][mask].sum()))
        expected.append(float(mask.sum()))
        assert reference.scalars() == pytest.approx(tuple(expected))
    else:
        kept = [name for name in ATTRS if name in query.select_attributes]
        for position, out in enumerate(query.select):
            name = next(iter(out.expr.columns()))
            assert (
                reference.column(position) == columns[name][mask]
            ).all()

    for other in results[1:]:
        assert reference.allclose(other)


@given(
    st.lists(st.booleans(), min_size=0, max_size=200),
    st.data(),
)
@settings(max_examples=80, deadline=None)
def test_selection_vector_matches_boolean_model(bits, data):
    """SelectionVector refinement == plain boolean masking."""
    mask1 = np.array(bits, dtype=bool)
    model = mask1.copy()
    sel = SelectionVector.all_rows(len(bits)).refine(mask1)

    # a second refinement over the currently selected rows
    keep_count = int(model.sum())
    bits2 = data.draw(
        st.lists(st.booleans(), min_size=keep_count, max_size=keep_count)
    )
    mask2 = np.array(bits2, dtype=bool)
    sel = sel.refine(mask2)
    positions_model = np.flatnonzero(model)[mask2]
    assert (sel.positions == positions_model).all()
    assert sel.count == len(positions_model)

    column = np.arange(len(bits)) * 3
    assert (sel.gather(column) == column[positions_model]).all()
