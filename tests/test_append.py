"""Appending tuples: every layout grows consistently, queries stay right."""

import numpy as np
import pytest

from repro.core.engine import H2OEngine
from repro.errors import LayoutError
from repro.storage import generate_table
from repro.storage.stitcher import stitch_group


def new_rows(schema, count, seed=99):
    rng = np.random.default_rng(seed)
    return {
        name: rng.integers(-(10**9), 10**9, size=count, dtype=np.int64)
        for name in schema.names
    }


class TestAppend:
    def test_all_layouts_grow(self, column_table):
        group, _ = stitch_group(
            column_table.layouts, ("a1", "a2"), column_table.schema
        )
        column_table.add_layout(group)
        before = column_table.num_rows
        column_table.append_rows(new_rows(column_table.schema, 100))
        assert column_table.num_rows == before + 100
        for layout in column_table.layouts:
            assert layout.num_rows == before + 100

    def test_row_alignment_preserved(self, column_table):
        group, _ = stitch_group(
            column_table.layouts, ("a1", "a2"), column_table.schema
        )
        column_table.add_layout(group)
        column_table.append_rows(new_rows(column_table.schema, 50))
        fresh = column_table.find_group({"a1", "a2"})
        single_a1 = column_table.layouts_containing("a1")[0]
        assert (fresh.column("a1") == single_a1.column("a1")).all()

    def test_appended_values_visible(self, column_table):
        rows = new_rows(column_table.schema, 10)
        column_table.append_rows(rows)
        tail = column_table.column("a3")[-10:]
        assert (tail == rows["a3"]).all()

    def test_append_missing_attribute(self, column_table):
        rows = new_rows(column_table.schema, 10)
        del rows["a4"]
        with pytest.raises(LayoutError):
            column_table.append_rows(rows)

    def test_append_ragged(self, column_table):
        rows = new_rows(column_table.schema, 10)
        rows["a1"] = rows["a1"][:5]
        with pytest.raises(LayoutError):
            column_table.append_rows(rows)

    def test_append_nothing_is_noop(self, column_table):
        before = column_table.num_rows
        column_table.append_rows(new_rows(column_table.schema, 10, seed=1) | {})
        assert column_table.num_rows == before + 10
        column_table.append_rows(
            {n: np.empty(0, dtype=np.int64) for n in column_table.schema.names}
        )
        assert column_table.num_rows == before + 10

    def test_row_table_append(self, row_table):
        before = row_table.num_rows
        row_table.append_rows(new_rows(row_table.schema, 25))
        assert row_table.layouts[0].num_rows == before + 25


class TestEngineAfterAppend:
    def test_queries_reflect_new_data(self):
        table = generate_table("r", 8, 5000, rng=3, initial_layout="column")
        engine = H2OEngine(table)
        first = engine.execute("SELECT count(*), sum(a1) FROM r")
        rows = new_rows(table.schema, 500, seed=5)
        table.append_rows(rows)
        second = engine.execute("SELECT count(*), sum(a1) FROM r")
        assert second.result.scalars()[0] == first.result.scalars()[0] + 500
        expected = first.result.scalars()[1] + float(rows["a1"].sum())
        assert second.result.scalars()[1] == pytest.approx(expected)

    def test_adapted_groups_survive_append(self):
        from repro.config import EngineConfig
        from repro.workloads.microbench import aggregation_query

        table = generate_table("r", 12, 10_000, rng=3, initial_layout="column")
        engine = H2OEngine(table, EngineConfig(window_size=8))
        attrs = [f"a{i}" for i in range(1, 9)]
        query = aggregation_query(
            attrs[:-2], where_attrs=attrs[-2:], selectivity=0.4, func="sum"
        )
        for _ in range(20):
            engine.execute(query)
        assert engine.manager.creation_log  # adapted
        table.append_rows(new_rows(table.schema, 1000, seed=6))
        report = engine.execute(query)
        # Still correct after growth, whatever plan it picks.
        a = {n: np.asarray(table.column(n)) for n in attrs}
        mask = np.ones(table.num_rows, dtype=bool)
        for conjunct in query.predicates:
            name = next(iter(conjunct.columns()))
            mask &= a[name] < conjunct.right.value
        expected = float(a["a1"][mask].sum())
        assert report.result.scalars()[0] == pytest.approx(expected)
