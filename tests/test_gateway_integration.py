"""Out-of-process gateway integration: boot, SIGKILL, clean recovery.

Runs ``python -m repro.gateway`` as a real subprocess, streams appends
at it over HTTP, kills it with SIGKILL mid-stream (no graceful path at
all), restarts it on the same data directory, and asserts the recovery
contract: every *acknowledged* append survives, the recovered rows are
an exact prefix-extension of the pre-kill stream (no holes, no
reordering, no partial batch), and the reborn server accepts new work.

Marked ``gateway_stress``: excluded from tier-1, run by a dedicated CI
job.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.gateway import GatewayClient, GatewayHTTPError

pytestmark = pytest.mark.gateway_stress

ATTRS = [{"name": "seq", "dtype": "int64"}, {"name": "v", "dtype": "float64"}]

REPO_ROOT = Path(__file__).resolve().parent.parent


class GatewayProcess:
    """One ``python -m repro.gateway`` subprocess bound to port 0."""

    def __init__(self, data_dir: Path, *extra_args: str) -> None:
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src
        )
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.gateway",
                "--data-dir",
                str(data_dir),
                "--port",
                "0",
                "--workers",
                "1",
                *extra_args,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        self.port = self._await_ready(timeout=60.0)

    def _await_ready(self, timeout: float) -> int:
        """Parse the readiness line; fail fast if the server dies."""
        result: dict = {}

        def read() -> None:
            result["line"] = self.proc.stdout.readline()

        reader = threading.Thread(target=read, daemon=True)
        reader.start()
        reader.join(timeout)
        line = result.get("line", "")
        if "listening on" not in line:
            self.proc.kill()
            stderr = self.proc.stderr.read()
            raise AssertionError(
                f"gateway never became ready: stdout={line!r} "
                f"stderr={stderr[-2000:]!r}"
            )
        return int(line.rsplit(":", 1)[1])

    def sigkill(self) -> None:
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=30)

    def terminate(self) -> None:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=30)
        if self.proc.stdout:
            self.proc.stdout.close()
        if self.proc.stderr:
            self.proc.stderr.close()


def test_sigkill_mid_append_stream_recovers_cleanly(tmp_path):
    data_dir = tmp_path / "data"
    server = GatewayProcess(data_dir, "--snapshot-every", "8")
    acked = 0
    try:
        with GatewayClient("127.0.0.1", server.port, timeout=30.0) as client:
            client.create_table("events", ATTRS, {"seq": [], "v": []})
            # Stream single-row appends; every ack means "fsync'd".
            for i in range(25):
                outcome = client.append(
                    "events", {"seq": [i], "v": [i * 0.5]}
                )
                assert outcome["appended"] == 1 and outcome["durable"]
                acked += 1
    finally:
        server.sigkill()  # no graceful path: WAL + snapshots must carry it

    reborn = GatewayProcess(data_dir, "--snapshot-every", "8")
    try:
        with GatewayClient("127.0.0.1", reborn.port, timeout=30.0) as client:
            # Contract 1: every acknowledged append survived.
            answer = client.query("SELECT count(*) FROM events")
            recovered_rows = int(answer["rows"][0][0])
            assert recovered_rows >= acked
            # Contract 2: exact prefix of the stream — no holes, no
            # reordering, no torn half-applied batch.
            seqs = client.query("SELECT seq FROM events")["rows"]
            assert [int(row[0]) for row in seqs] == list(range(recovered_rows))
            # Contract 3: the reborn server accepts new work.
            client.append("events", {"seq": [recovered_rows], "v": [1.0]})
            after = client.query("SELECT count(*), max(seq) FROM events")
            assert after["rows"] == [[recovered_rows + 1, recovered_rows]]
            status, payload = client.healthz()
            assert status == 200 and payload["status"] == "healthy"
    finally:
        reborn.terminate()


def test_graceful_shutdown_checkpoints(tmp_path):
    data_dir = tmp_path / "data"
    server = GatewayProcess(data_dir)
    try:
        with GatewayClient("127.0.0.1", server.port) as client:
            client.create_table("t", ATTRS, {"seq": [0, 1], "v": [0.0, 0.5]})
    finally:
        server.terminate()  # SIGTERM -> drain + final checkpoint
    snapshots = sorted((data_dir / "snapshots").glob("snap-*"))
    assert snapshots, "graceful shutdown should have written a snapshot"
    assert (snapshots[-1] / "manifest.json").exists()

    reborn = GatewayProcess(data_dir)
    try:
        with GatewayClient("127.0.0.1", reborn.port) as client:
            assert client.query("SELECT count(*) FROM t")["rows"] == [[2]]
    finally:
        reborn.terminate()


def test_server_survives_bad_requests(tmp_path):
    server = GatewayProcess(tmp_path / "data")
    try:
        with GatewayClient("127.0.0.1", server.port) as client:
            for _ in range(3):
                with pytest.raises(GatewayHTTPError) as excinfo:
                    client.query("SELECT count(*) FROM ghost")
                assert excinfo.value.status == 404
            client.create_table("t", ATTRS, {"seq": [1], "v": [1.0]})
            assert client.query("SELECT count(*) FROM t")["rows"] == [[1]]
    finally:
        server.terminate()
