"""Tables (coverage invariant, covers) and abstract partitionings."""

import numpy as np
import pytest

from repro.errors import CatalogError, LayoutError, StorageError
from repro.storage import (
    Catalog,
    ColumnGroup,
    Partitioning,
    Schema,
    SingleColumn,
    Table,
    column_partitioning,
    generate_table,
    row_partitioning,
)
from repro.storage.layout import LayoutKind
from repro.storage.stitcher import stitch_group


class TestTable:
    def test_from_columns_column_major(self, column_table):
        assert all(
            layout.kind is LayoutKind.COLUMN
            for layout in column_table.layouts
        )
        assert len(column_table.layouts) == 8

    def test_from_columns_row_major(self, row_table):
        assert len(row_table.layouts) == 1
        assert row_table.layouts[0].kind is LayoutKind.ROW

    def test_same_logical_content(self, column_table, row_table):
        for name in column_table.schema.names:
            assert (column_table.column(name) == row_table.column(name)).all()

    def test_unknown_initial_layout(self, small_schema):
        with pytest.raises(StorageError):
            Table.from_columns(
                "r",
                small_schema,
                {n: np.zeros(3) for n in small_schema.names},
                initial_layout="diagonal",
            )

    def test_coverage_enforced_on_init(self, small_schema):
        with pytest.raises(LayoutError):
            Table("r", small_schema, [SingleColumn("a1", np.zeros(3))])

    def test_add_layout_row_count_check(self, column_table):
        bad = SingleColumn("a1", np.zeros(7))
        with pytest.raises(LayoutError):
            column_table.add_layout(bad)

    def test_add_layout_unknown_attr(self, column_table):
        bad = SingleColumn("zz", np.zeros(column_table.num_rows))
        with pytest.raises(LayoutError):
            column_table.add_layout(bad)

    def test_drop_refuses_to_break_coverage(self, column_table):
        with pytest.raises(LayoutError):
            column_table.drop_layout(column_table.layouts[0])

    def test_drop_allowed_when_replicated(self, column_table):
        group, _ = stitch_group(
            column_table.layouts, ("a1", "a2"), column_table.schema
        )
        column_table.add_layout(group)
        single_a1 = column_table.layouts[0]
        column_table.drop_layout(single_a1)  # a1 still lives in the group
        assert (column_table.column("a1") == group.column("a1")).all()

    def test_covering_layouts_prefers_fewest(self, column_table):
        group, _ = stitch_group(
            column_table.layouts, ("a1", "a2", "a3"), column_table.schema
        )
        column_table.add_layout(group)
        cover = column_table.covering_layouts(["a1", "a2", "a3"])
        assert cover == (group,)

    def test_narrowest_cover_prefers_singles(self, column_table):
        group, _ = stitch_group(
            column_table.layouts, ("a1", "a2", "a3"), column_table.schema
        )
        column_table.add_layout(group)
        cover = column_table.narrowest_cover(["a1", "a2"])
        assert all(layout.width == 1 for layout in cover)

    def test_covering_unknown_attr(self, column_table):
        with pytest.raises(LayoutError):
            column_table.covering_layouts(["nope"])

    def test_find_group(self, column_table):
        group, _ = stitch_group(
            column_table.layouts, ("a1", "a2"), column_table.schema
        )
        column_table.add_layout(group)
        assert column_table.find_group({"a2", "a1"}) is group
        assert column_table.find_group({"a1"}) is None

    def test_layouts_containing_sorted_by_width(self, column_table):
        group, _ = stitch_group(
            column_table.layouts, ("a1", "a2"), column_table.schema
        )
        column_table.add_layout(group)
        providers = column_table.layouts_containing("a1")
        assert providers[0].width == 1
        assert group in providers

    def test_nbytes_counts_replicas(self, column_table):
        before = column_table.nbytes
        group, _ = stitch_group(
            column_table.layouts, ("a1", "a2"), column_table.schema
        )
        column_table.add_layout(group)
        assert column_table.nbytes == before + group.nbytes

    def test_layout_summary_mentions_all(self, column_table):
        text = column_table.layout_summary()
        assert "8 layouts" in text


class TestPartitioning:
    def test_row_and_column_extremes(self, small_schema):
        row = row_partitioning(small_schema)
        column = column_partitioning(small_schema)
        assert len(row) == 1
        assert len(column) == small_schema.width

    def test_cover_required(self, small_schema):
        with pytest.raises(LayoutError):
            Partitioning(small_schema, [["a1", "a2"]])

    def test_overlap_rejected(self, small_schema):
        groups = [["a1", "a2"], ["a2", "a3"]] + [
            [n] for n in small_schema.names[3:]
        ]
        with pytest.raises(LayoutError):
            Partitioning(small_schema, groups + [["a1"]])

    def test_overlap_allowed_when_flagged(self, small_schema):
        part = Partitioning(
            small_schema,
            [list(small_schema.names), ["a1", "a2"]],
            allow_overlap=True,
        )
        assert len(part) == 2

    def test_unknown_attr(self, small_schema):
        with pytest.raises(LayoutError):
            Partitioning(small_schema, [["zz"]], require_cover=False)

    def test_groups_covering_greedy(self, small_schema):
        part = Partitioning(
            small_schema,
            [["a1", "a2", "a3"], ["a4", "a5"], ["a6"], ["a7"], ["a8"]],
        )
        cover = part.groups_covering(["a1", "a4"])
        assert frozenset({"a1", "a2", "a3"}) in cover
        assert frozenset({"a4", "a5"}) in cover

    def test_merge(self, small_schema):
        part = column_partitioning(small_schema)
        merged = part.merge(["a1"], ["a2"])
        assert frozenset({"a1", "a2"}) in merged
        assert len(merged) == small_schema.width - 1

    def test_merge_requires_members(self, small_schema):
        part = column_partitioning(small_schema)
        with pytest.raises(LayoutError):
            part.merge(["a1", "a2"], ["a3"])

    def test_equality_order_independent(self, small_schema):
        first = Partitioning(small_schema, [["a1"], ["a2"]] + [[n] for n in small_schema.names[2:]])
        second = Partitioning(small_schema, [[n] for n in reversed(small_schema.names)])
        assert first == second

    def test_group_of(self, small_schema):
        part = row_partitioning(small_schema)
        assert part.group_of("a3") == frozenset(small_schema.names)


class TestCatalog:
    def test_register_and_get(self, column_table):
        catalog = Catalog()
        catalog.register(column_table)
        assert catalog.get("r") is column_table
        assert "r" in catalog and len(catalog) == 1

    def test_duplicate_rejected(self, column_table):
        catalog = Catalog()
        catalog.register(column_table)
        with pytest.raises(CatalogError):
            catalog.register(column_table)
        catalog.register(column_table, replace=True)  # explicit is fine

    def test_unknown_lookup(self):
        with pytest.raises(CatalogError):
            Catalog().get("ghost")

    def test_drop(self, column_table):
        catalog = Catalog()
        catalog.register(column_table)
        catalog.drop("r")
        assert "r" not in catalog
        with pytest.raises(CatalogError):
            catalog.drop("r")
