"""Property test: generated kernels == interpreted operators, for random
queries over random layout combinations (the core codegen contract)."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.config import EngineConfig
from repro.execution import Executor, enumerate_plans
from repro.execution.strategies import AccessPlan, ExecutionStrategy, fused_allowed
from repro.sql import analyze_query
from repro.sql.builder import QueryBuilder
from repro.sql.expressions import ColumnRef, col
from repro.storage import Schema, Table
from repro.storage.stitcher import stitch_group

ATTRS = ("a", "b", "c", "d", "e", "f")


@st.composite
def cases(draw):
    seed = draw(st.integers(0, 2**16))
    num_rows = draw(st.integers(1, 400))
    rng = np.random.default_rng(seed)
    columns = {
        name: rng.integers(-10**6, 10**6, size=num_rows, dtype=np.int64)
        for name in ATTRS
    }
    schema = Schema.from_names(ATTRS)
    table = Table.from_columns("r", schema, columns, "column")

    # A random (possibly overlapping) set of groups over the attributes.
    num_groups = draw(st.integers(0, 2))
    for _ in range(num_groups):
        width = draw(st.integers(2, 4))
        start = draw(st.integers(0, len(ATTRS) - width))
        group, _ = stitch_group(
            table.layouts, ATTRS[start : start + width], schema
        )
        table.add_layout(group)

    # A random query: aggregation or projection, expression or plain.
    builder = QueryBuilder("r")
    shape = draw(st.sampled_from(["agg_cols", "agg_expr", "project"]))
    chosen = draw(
        st.lists(st.sampled_from(ATTRS), min_size=1, max_size=4, unique=True)
    )
    if shape == "agg_cols":
        for name in chosen:
            builder.select_sum(name)
        builder.select_min(chosen[0])
        builder.select_count()
    elif shape == "agg_expr":
        expr = ColumnRef(chosen[0])
        for name in chosen[1:]:
            expr = expr + col(name)
        builder.select_sum(expr)
        builder.select_max(expr)
    else:
        builder.select_columns(chosen)
    num_predicates = draw(st.integers(0, 2))
    for _ in range(num_predicates):
        attr = draw(st.sampled_from(ATTRS))
        threshold = draw(st.integers(-(10**6), 10**6))
        if draw(st.booleans()):
            builder.where(col(attr) < threshold)
        else:
            builder.where(col(attr) >= threshold)
    return table, builder.build()


@given(cases())
@settings(max_examples=80, deadline=None)
def test_generated_equals_interpreted_on_every_plan(case):
    table, query = case
    info = analyze_query(query, table.schema)
    generated = Executor(EngineConfig())
    interpreted = Executor(EngineConfig(use_codegen=False))
    reference = None
    for plan in enumerate_plans(table, info):
        for executor in (generated, interpreted):
            result, _stats = executor.run_plan(info, plan)
            if reference is None:
                reference = result
            else:
                assert reference.allclose(result), plan.describe()


@given(cases())
@settings(max_examples=30, deadline=None)
def test_forced_strategies_agree(case):
    """Even plans the cost model would never pick must be correct."""
    table, query = case
    info = analyze_query(query, table.schema)
    executor = Executor(EngineConfig())
    cover = table.covering_layouts(info.all_attrs)
    late = AccessPlan(ExecutionStrategy.LATE, cover)
    result_late, _ = executor.run_plan(info, late)
    if fused_allowed(cover):
        fused = AccessPlan(ExecutionStrategy.FUSED, cover)
        result_fused, _ = executor.run_plan(info, fused)
        assert result_late.allclose(result_fused)
