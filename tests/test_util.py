"""Utility helpers: timing, rng derivation, validation, text tables."""

import time

import numpy as np
import pytest

from repro.util import (
    Stopwatch,
    Timer,
    check_fraction,
    check_positive,
    check_unique,
    derive_rng,
    ensure_rng,
    format_seconds,
    format_table,
)


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009

    def test_zero_before_use(self):
        assert Timer().elapsed == 0.0


class TestStopwatch:
    def test_accumulates_phases(self):
        watch = Stopwatch()
        with watch.measure("a"):
            pass
        with watch.measure("a"):
            pass
        with watch.measure("b"):
            pass
        assert watch.get("a") >= 0
        assert set(watch.totals) == {"a", "b"}
        assert watch.total() == pytest.approx(
            watch.get("a") + watch.get("b")
        )

    def test_add_direct(self):
        watch = Stopwatch()
        watch.add("x", 1.5)
        watch.add("x", 0.5)
        assert watch.get("x") == 2.0

    def test_reset(self):
        watch = Stopwatch()
        watch.add("x", 1.0)
        watch.reset()
        assert watch.total() == 0.0

    def test_accumulates_on_exception(self):
        watch = Stopwatch()
        with pytest.raises(RuntimeError):
            with watch.measure("x"):
                raise RuntimeError()
        assert watch.get("x") >= 0.0
        assert "x" in watch.totals


class TestFormatSeconds:
    @pytest.mark.parametrize(
        "value,expected_unit",
        [(2.5, "s"), (0.010, "ms"), (3e-5, "us"), (5e-8, "ns")],
    )
    def test_units(self, value, expected_unit):
        assert format_seconds(value).endswith(expected_unit)

    def test_negative(self):
        assert format_seconds(-0.01).startswith("-")


class TestRng:
    def test_ensure_rng_from_seed(self):
        a = ensure_rng(42).integers(0, 100, 5)
        b = ensure_rng(42).integers(0, 100, 5)
        assert (a == b).all()

    def test_ensure_rng_passthrough(self):
        generator = np.random.default_rng(1)
        assert ensure_rng(generator) is generator

    def test_derive_rng_deterministic(self):
        a = derive_rng(5, "x").integers(0, 1000, 4)
        b = derive_rng(5, "x").integers(0, 1000, 4)
        assert (a == b).all()

    def test_derive_rng_tag_independence(self):
        a = derive_rng(5, "x").integers(0, 10**9)
        b = derive_rng(5, "y").integers(0, 10**9)
        assert a != b  # astronomically unlikely to collide

    def test_derive_rng_stable_across_processes(self):
        """Tag hashing must not use the salted built-in ``hash()``.

        The literal below pins the crc32-based derivation: if it ever
        changes, every printed oracle seed stops reproducing the same
        fault schedule (regression for a PYTHONHASHSEED dependence).
        """
        assert int(derive_rng(5, "x").integers(0, 10**9)) == 829708741


class TestValidation:
    def test_check_positive(self):
        check_positive("n", 3)
        with pytest.raises(ValueError):
            check_positive("n", 0)

    def test_check_fraction_inclusive(self):
        check_fraction("f", 0.0)
        check_fraction("f", 1.0)
        with pytest.raises(ValueError):
            check_fraction("f", 1.2)

    def test_check_fraction_exclusive(self):
        with pytest.raises(ValueError):
            check_fraction("f", 0.0, inclusive=False)

    def test_check_unique(self):
        check_unique("name", ["a", "b"])
        with pytest.raises(ValueError):
            check_unique("name", ["a", "a"])


class TestFormatTable:
    def test_renders_aligned(self):
        text = format_table(["x", "value"], [[1, 2.5], [10, 0.125]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "x" in lines[0] and "value" in lines[0]

    def test_title(self):
        text = format_table(["a"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = format_table(["v"], [[1234567.0], [0.00001], [0.5]])
        assert "e+" in text or "e-" in text  # large/small use scientific
