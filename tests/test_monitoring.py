"""Monitoring: affinity matrices, window maintenance, shift detection."""

import pytest

from repro.config import EngineConfig
from repro.core.affinity import AffinityMatrix
from repro.core.history import ShiftDetector, jaccard
from repro.core.monitor import Monitor
from repro.core.window import DynamicWindow
from repro.sql import parse_query
from repro.storage import wide_schema


def q(sql):
    return parse_query(sql)


class TestAffinityMatrix:
    def test_co_access_counts(self, small_schema):
        matrix = AffinityMatrix(small_schema)
        matrix.add(["a1", "a2"])
        matrix.add(["a1", "a2", "a3"])
        assert matrix.affinity("a1", "a2") == 2
        assert matrix.affinity("a1", "a3") == 1
        assert matrix.affinity("a1", "a4") == 0
        assert matrix.frequency("a1") == 2

    def test_symmetry(self, small_schema):
        matrix = AffinityMatrix(small_schema)
        matrix.add(["a1", "a5"])
        assert matrix.affinity("a1", "a5") == matrix.affinity("a5", "a1")

    def test_remove_reverses_add(self, small_schema):
        matrix = AffinityMatrix(small_schema)
        matrix.add(["a1", "a2"])
        matrix.remove(["a1", "a2"])
        assert matrix.affinity("a1", "a2") == 0
        assert (matrix.matrix == 0).all()

    def test_hot_attributes_ordering(self, small_schema):
        matrix = AffinityMatrix(small_schema)
        for _ in range(3):
            matrix.add(["a2"])
        matrix.add(["a1"])
        hot = matrix.hot_attributes()
        assert hot[0] == ("a2", 3.0)

    def test_clusters(self, small_schema):
        matrix = AffinityMatrix(small_schema)
        matrix.add(["a1", "a2"])
        matrix.add(["a3", "a4"])
        clusters = matrix.clusters(min_affinity=1.0)
        assert frozenset({"a1", "a2"}) in clusters
        assert frozenset({"a3", "a4"}) in clusters

    def test_unknown_attrs_ignored(self, small_schema):
        matrix = AffinityMatrix(small_schema)
        matrix.add(["a1", "zz"])  # zz silently skipped
        assert matrix.frequency("a1") == 1


class TestMonitor:
    def test_observes_both_clauses(self, small_schema):
        monitor = Monitor(small_schema, capacity=10)
        monitor.observe(q("SELECT sum(a1) FROM r WHERE a2 < 1"))
        assert monitor.select_affinity.frequency("a1") == 1
        assert monitor.where_affinity.frequency("a2") == 1
        assert monitor.where_affinity.frequency("a1") == 0

    def test_eviction_keeps_stats_consistent(self, small_schema):
        monitor = Monitor(small_schema, capacity=2)
        monitor.observe(q("SELECT a1 FROM r"))
        monitor.observe(q("SELECT a2 FROM r"))
        monitor.observe(q("SELECT a3 FROM r"))
        assert len(monitor) == 2
        assert monitor.select_affinity.frequency("a1") == 0
        assert monitor.select_affinity.frequency("a3") == 1

    def test_patterns_sorted_by_count(self, small_schema):
        monitor = Monitor(small_schema, capacity=10)
        for _ in range(3):
            monitor.observe(q("SELECT a1, a2 FROM r"))
        monitor.observe(q("SELECT a3 FROM r"))
        patterns = monitor.patterns()
        assert patterns[0].attrs == frozenset({"a1", "a2"})
        assert patterns[0].count == 3

    def test_resize_shrinks(self, small_schema):
        monitor = Monitor(small_schema, capacity=5)
        for i in range(5):
            monitor.observe(q(f"SELECT a{i + 1} FROM r"))
        monitor.resize(2)
        assert len(monitor) == 2

    def test_pattern_frequency_subset_rule(self, small_schema):
        monitor = Monitor(small_schema, capacity=10)
        monitor.observe(q("SELECT a1, a2 FROM r"))
        monitor.observe(q("SELECT a1 FROM r"))
        assert monitor.pattern_frequency(frozenset({"a1", "a2"})) == 2
        assert monitor.pattern_frequency(frozenset({"a1"})) == 1

    def test_distinct_access_sets(self, small_schema):
        monitor = Monitor(small_schema, capacity=10)
        monitor.observe(q("SELECT a1 FROM r"))
        monitor.observe(q("SELECT a1 FROM r WHERE a1 < 9"))
        sets = monitor.distinct_access_sets()
        assert sets[0] == (frozenset({"a1"}), 2)


class TestDynamicWindow:
    def test_due_after_window_size(self):
        window = DynamicWindow(
            EngineConfig(window_size=3, min_window=3, max_window=10)
        )
        for _ in range(3):
            assert not window.due() or True
            window.note_query()
        assert window.due()
        window.adapted()
        assert not window.due()

    def test_shrink_and_grow(self):
        config = EngineConfig(window_size=20, min_window=8, max_window=40)
        window = DynamicWindow(config)
        window.note_shift()
        assert window.size == 10
        window.note_shift()
        assert window.size == 8  # clamped at min
        window.note_stable()
        assert window.size == 8 + window.config.window_grow_step

    def test_static_window_never_moves(self):
        config = EngineConfig(window_size=20, dynamic_window=False)
        window = DynamicWindow(config)
        window.note_shift()
        window.note_stable()
        assert window.size == 20
        assert window.shrink_events == 0

    def test_grow_clamped_at_max(self):
        config = EngineConfig(window_size=20, max_window=21)
        window = DynamicWindow(config)
        window.note_stable()
        window.note_stable()
        assert window.size == 21


class TestShiftDetector:
    def test_jaccard(self):
        assert jaccard(frozenset("ab"), frozenset("ab")) == 1.0
        assert jaccard(frozenset("ab"), frozenset("cd")) == 0.0
        assert jaccard(frozenset(), frozenset()) == 1.0

    def test_detects_abrupt_shift(self):
        config = EngineConfig()
        detector = ShiftDetector(config, recent=6)
        known = [frozenset({"a1", "a2", "a3"})]
        for _ in range(6):
            assert not detector.assess(frozenset({"a1", "a2", "a3"}), known)
        fired = []
        for _ in range(6):
            fired.append(
                detector.assess(frozenset({"a7", "a8", "a9"}), known)
            )
        assert any(fired)

    def test_fires_once_per_burst(self):
        config = EngineConfig()
        detector = ShiftDetector(config, recent=4, warmup=2)
        known = [frozenset({"a1"})]
        # Warm, stable phase first (novelty during warm-up never fires).
        for _ in range(6):
            assert not detector.assess(frozenset({"a1"}), known)
        fires = [
            detector.assess(frozenset({f"b{i}"}), known) for i in range(8)
        ]
        assert sum(fires) == 1  # latched until stability returns

    def test_similar_patterns_not_a_shift(self):
        config = EngineConfig()
        detector = ShiftDetector(config, recent=5)
        known = [frozenset({"a1", "a2", "a3", "a4"})]
        fired = [
            detector.assess(frozenset({"a1", "a2", "a3"}), known)
            for _ in range(5)
        ]
        assert not any(fired)
