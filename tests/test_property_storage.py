"""Property-based storage invariants: stitching preserves data and
order; partitionings cover; covers actually cover."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.storage import Partitioning, Schema, Table
from repro.storage.stitcher import stitch_group, stitch_single_columns

ATTRS = tuple(f"c{i}" for i in range(6))


@st.composite
def random_tables(draw):
    num_rows = draw(st.integers(min_value=1, max_value=200))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    layout = draw(st.sampled_from(["column", "row"]))
    rng = np.random.default_rng(seed)
    columns = {
        name: rng.integers(-50, 50, size=num_rows, dtype=np.int64)
        for name in ATTRS
    }
    schema = Schema.from_names(ATTRS)
    return Table.from_columns("r", schema, columns, layout), columns


@given(
    random_tables(),
    st.lists(st.sampled_from(ATTRS), min_size=1, max_size=6, unique=True),
)
@settings(max_examples=60, deadline=None)
def test_stitch_group_preserves_content_and_order(case, attrs):
    table, columns = case
    group, stats = stitch_group(table.layouts, attrs, table.schema)
    assert group.attrs == tuple(attrs)
    for attr in attrs:
        assert (group.column(attr) == columns[attr]).all()
    assert stats.bytes_written == group.nbytes
    assert stats.bytes_read > 0


@given(
    random_tables(),
    st.lists(st.sampled_from(ATTRS), min_size=1, max_size=4, unique=True),
)
@settings(max_examples=40, deadline=None)
def test_stitch_singles_roundtrip(case, attrs):
    table, columns = case
    singles, _stats = stitch_single_columns(table.layouts, attrs)
    for single in singles:
        assert (single.data == columns[single.name]).all()


@given(random_tables(), st.data())
@settings(max_examples=40, deadline=None)
def test_covering_layouts_cover(case, data):
    table, _columns = case
    needed = data.draw(
        st.lists(st.sampled_from(ATTRS), min_size=1, max_size=6, unique=True)
    )
    for cover in (
        table.covering_layouts(needed),
        table.narrowest_cover(needed),
    ):
        covered = set()
        for layout in cover:
            covered |= layout.attr_set
        assert set(needed) <= covered


@given(random_tables(), st.data())
@settings(max_examples=40, deadline=None)
def test_stitch_partition_roundtrips_to_row_scan(case, data):
    """Stitching any column-group partition preserves the full scan.

    Draw a random non-overlapping covering partition of the schema,
    stitch each group from the table's layouts, then stitch the groups
    back into one full-width (row) layout: the result must equal the
    row-major matrix of the original columns, bit for bit and in tuple
    order — the row-alignment invariant the reorganizer depends on.
    """
    table, columns = case
    order = data.draw(st.permutations(list(ATTRS)))
    remaining = list(order)
    groups = []
    while remaining:
        size = data.draw(st.integers(min_value=1, max_value=len(remaining)))
        groups.append(tuple(remaining[:size]))
        remaining = remaining[size:]
    stitched = [
        stitch_group(table.layouts, group, table.schema)[0]
        for group in groups
    ]
    # Each group individually carries its source columns unchanged.
    for group, layout in zip(groups, stitched):
        assert layout.attrs == group
        for attr in group:
            assert (layout.column(attr) == columns[attr]).all()
    # The partition as a whole round-trips back to the row scan.
    full, stats = stitch_group(
        stitched, ATTRS, table.schema, full_width=True
    )
    row_matrix = np.column_stack([columns[attr] for attr in ATTRS])
    assert (np.asarray(full.data) == row_matrix).all()
    assert stats.bytes_written == full.nbytes


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_partitioning_cover_invariant(data):
    schema = Schema.from_names(ATTRS)
    # Draw a random non-overlapping covering partition of the attrs.
    remaining = list(ATTRS)
    groups = []
    rng_order = data.draw(st.permutations(remaining))
    remaining = list(rng_order)
    while remaining:
        size = data.draw(
            st.integers(min_value=1, max_value=len(remaining))
        )
        groups.append(remaining[:size])
        remaining = remaining[size:]
    part = Partitioning(schema, groups)
    covered = set()
    for group in part:
        covered |= group
    assert covered == set(ATTRS)
    # groups_covering always covers what it is asked for
    needed = data.draw(
        st.lists(st.sampled_from(ATTRS), min_size=1, max_size=6, unique=True)
    )
    cover = part.groups_covering(needed)
    got = set()
    for group in cover:
        got |= group
    assert set(needed) <= got
