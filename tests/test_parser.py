"""The SQL-subset parser: grammar coverage and error reporting."""

import pytest

from repro.errors import ParseError
from repro.sql import parse_query
from repro.sql.expressions import (
    Aggregate,
    AggregateFunc,
    Arithmetic,
    BooleanOp,
    Comparison,
    Literal,
    Not,
)


class TestBasicParsing:
    def test_simple_projection(self):
        query = parse_query("SELECT a, b FROM r")
        assert query.table == "r"
        assert [out.name for out in query.select] == ["a", "b"]
        assert query.where is None

    def test_keywords_case_insensitive(self):
        query = parse_query("select A from R where A < 5")
        assert query.table == "R"
        assert query.where is not None

    def test_alias(self):
        query = parse_query("SELECT a + b AS total FROM r")
        assert query.select[0].name == "total"

    def test_aggregates(self):
        query = parse_query(
            "SELECT sum(a), min(b), max(c), avg(d), count(*) FROM r"
        )
        funcs = [
            out.expr.func
            for out in query.select
            if isinstance(out.expr, Aggregate)
        ]
        assert funcs == [
            AggregateFunc.SUM,
            AggregateFunc.MIN,
            AggregateFunc.MAX,
            AggregateFunc.AVG,
            AggregateFunc.COUNT,
        ]

    def test_count_star(self):
        query = parse_query("SELECT count(*) FROM r")
        assert query.select[0].expr.arg is None

    def test_numbers(self):
        query = parse_query("SELECT a FROM r WHERE a < 2.5 AND a > -3")
        literals = [
            node.value
            for conj in query.predicates
            for node in [conj.right]
            if isinstance(node, Literal)
        ]
        assert 2.5 in literals
        assert -3 in literals

    def test_scientific_notation(self):
        query = parse_query("SELECT a FROM r WHERE a < 1e9")
        assert query.predicates[0].right.value == 1e9


class TestPrecedence:
    def test_mul_binds_tighter_than_add(self):
        query = parse_query("SELECT a + b * c FROM r")
        expr = query.select[0].expr
        assert expr.op.value == "+"
        assert isinstance(expr.right, Arithmetic)
        assert expr.right.op.value == "*"

    def test_parentheses_override(self):
        query = parse_query("SELECT (a + b) * c FROM r")
        expr = query.select[0].expr
        assert expr.op.value == "*"

    def test_and_binds_tighter_than_or(self):
        query = parse_query(
            "SELECT a FROM r WHERE a < 1 OR b < 2 AND c < 3"
        )
        where = query.where
        assert isinstance(where, BooleanOp)
        assert where.op.value == "or"
        assert isinstance(where.right, BooleanOp)
        assert where.right.op.value == "and"

    def test_not(self):
        query = parse_query("SELECT a FROM r WHERE NOT a < 1")
        assert isinstance(query.where, Not)

    def test_parenthesized_boolean(self):
        query = parse_query(
            "SELECT a FROM r WHERE (a < 1 OR b < 2) AND c < 3"
        )
        assert isinstance(query.where, BooleanOp)
        assert query.where.op.value == "and"
        assert isinstance(query.where.left, BooleanOp)

    def test_unary_minus(self):
        query = parse_query("SELECT -a FROM r")
        expr = query.select[0].expr
        assert isinstance(expr, Arithmetic)  # 0 - a

    def test_comparison_operators(self):
        for op in ("<", "<=", ">", ">=", "=", "!=", "<>"):
            query = parse_query(f"SELECT a FROM r WHERE a {op} 5")
            assert isinstance(query.where, Comparison)


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "SELECT",
            "SELECT FROM r",
            "SELECT a",
            "SELECT a FROM",
            "SELECT a FROM r WHERE",
            "SELECT a FROM r WHERE a",
            "SELECT a FROM r trailing",
            "SELECT a FROM r WHERE a < ",
            "SELECT sum( FROM r",
            "SELECT a, FROM r",
            "FROM r SELECT a",
        ],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(ParseError):
            parse_query(text)

    def test_rejects_unknown_character(self):
        with pytest.raises(ParseError):
            parse_query("SELECT a FROM r WHERE a < $5")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_query("SELECT a FROM r nonsense")
        assert excinfo.value.position is not None


class TestRoundtrip:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT a, b FROM r",
            "SELECT sum((a + b)) FROM r",
            "SELECT a FROM r WHERE a < 5 AND b > 3",
            "SELECT max(a), count(*) FROM r WHERE a < 1 OR b > 2",
            "SELECT ((a + b) * c) FROM r WHERE NOT (a < 1)",
        ],
    )
    def test_parse_render_parse_fixpoint(self, sql):
        first = parse_query(sql)
        second = parse_query(first.to_sql())
        assert first.select == second.select
        assert first.where == second.where


class TestSugar:
    """BETWEEN and IN desugar into the core predicate algebra."""

    def test_between(self):
        query = parse_query("SELECT a FROM r WHERE a BETWEEN 2 AND 8")
        from repro.sql.expressions import BooleanOp

        assert isinstance(query.where, BooleanOp)
        assert query.where.to_sql() == "(a >= 2 AND a <= 8)"

    def test_not_between(self):
        query = parse_query("SELECT a FROM r WHERE a NOT BETWEEN 2 AND 8")
        assert isinstance(query.where, Not)

    def test_in_list(self):
        query = parse_query("SELECT a FROM r WHERE a IN (1, 2, 3)")
        sql = query.where.to_sql()
        assert sql.count("=") == 3 and sql.count("OR") == 2

    def test_not_in(self):
        query = parse_query("SELECT a FROM r WHERE a NOT IN (1, 2)")
        assert isinstance(query.where, Not)

    def test_between_combines_with_and(self):
        query = parse_query(
            "SELECT a FROM r WHERE a BETWEEN 1 AND 5 AND b < 0"
        )
        # BETWEEN desugars into two conjuncts, plus the explicit one.
        assert len(query.predicates) == 3

    def test_between_executes_correctly(self):
        import numpy as np

        from repro.core.engine import H2OEngine
        from repro.storage import generate_table

        table = generate_table("r", 3, 4000, rng=5)
        engine = H2OEngine(table)
        report = engine.execute(
            "SELECT count(*) FROM r WHERE a1 BETWEEN -500000000 AND 500000000"
        )
        values = np.asarray(table.column("a1"))
        expected = int(
            ((values >= -500000000) & (values <= 500000000)).sum()
        )
        assert report.result.scalars()[0] == expected

    def test_in_executes_correctly(self):
        import numpy as np

        from repro.core.engine import H2OEngine
        from repro.storage import generate_table

        table = generate_table("r", 2, 1000, rng=5)
        engine = H2OEngine(table)
        first = int(table.column("a1")[0])
        report = engine.execute(f"SELECT count(*) FROM r WHERE a1 IN ({first})")
        values = np.asarray(table.column("a1"))
        assert report.result.scalars()[0] == int((values == first).sum())

    def test_dangling_not(self):
        with pytest.raises(ParseError):
            parse_query("SELECT a FROM r WHERE a NOT < 5")
