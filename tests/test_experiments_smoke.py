"""End-to-end smoke tests of the benchmark experiment drivers.

Each driver runs at the minimum scale (H2O_SCALE tiny clamps row counts
to 1000) and must produce a well-formed result whose qualitative
structure can be checked cheaply.  The full-scale shapes are recorded in
EXPERIMENTS.md; these tests guard the harness plumbing.
"""

import pytest

from repro.bench.harness import run_experiment


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setenv("H2O_SCALE", "0.02")


def test_fig13_online_beats_offline():
    result = run_experiment("fig13")
    assert len(result.rows) == 4
    for label, _initial, offline, online, _improvement in result.rows:
        assert online <= offline, label


def test_fig14_rows_well_formed():
    result = run_experiment("fig14")
    assert len(result.rows) == 4
    for row in result.rows:
        assert row[2] > 0 and row[3] > 0


def test_fig11_structure():
    # At the 1000-row smoke scale the per-cell penalties are noise (all
    # plans cost ~the fixed numpy dispatch overhead); the penalty shape
    # is checked at full scale and recorded in EXPERIMENTS.md.  Here we
    # only guard the harness plumbing.
    result = run_experiment("fig11")
    assert len(result.rows) == 4  # four selectivities
    for row in result.rows:
        assert len(row) == 6  # label + five useful-attr counts
        assert all(isinstance(cell, float) for cell in row[1:])


def test_fig12_single_group_is_baseline():
    result = run_experiment("fig12")
    for row in result.rows:
        assert row[1] == 1


def test_fig9_reports_adaptation_points():
    # Whether the dynamic window actually adapts *earlier* depends on
    # benefit estimates that are noise at the 1000-row smoke scale; the
    # timing shape is validated at full scale (EXPERIMENTS.md).  Here:
    # the experiment must produce both series and the adaptation note.
    result = run_experiment("fig9")
    assert len(result.series["static"]) == len(result.series["dynamic"])
    assert "first_adaptation" in result.series
    first_dynamic, _first_static = result.series["first_adaptation"]
    assert first_dynamic is None or first_dynamic >= 15


def test_fig1_series_lengths_match():
    result = run_experiment("fig1")
    fractions = result.series["fractions"]
    assert len(result.series["column"]) == len(fractions)
    assert len(result.series["row"]) == len(fractions)


def test_table1_reports_all_engines():
    result = run_experiment("table1")
    engines = {row[0] for row in result.rows}
    assert engines == {"row", "column", "h2o", "optimal"}


def test_ablation_has_baseline_first():
    result = run_experiment("ablation")
    assert result.rows[0][0] == "full H2O"
    assert result.rows[0][3] == "1.00x"
