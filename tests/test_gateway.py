"""In-process HTTP tests for the asyncio gateway.

The gateway runs on a private event loop in a background thread and
binds port 0 (a real ephemeral socket, not a mock), so these tests
exercise the full stack: HTTP parsing, routing, the executor bridge
onto the threaded service, group-commit coalescing, tenancy and the
error → status mapping.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.config import EngineConfig, GatewayConfig
from repro.gateway import DurableStore, Gateway, GatewayClient, GatewayHTTPError

ATTRS = [{"name": "a", "dtype": "int64"}, {"name": "f", "dtype": "float64"}]


@contextlib.contextmanager
def running_gateway(data_dir, **config_overrides):
    config_overrides.setdefault("port", 0)
    config_overrides.setdefault("snapshot_every_records", 0)
    config = GatewayConfig(**config_overrides)
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    store = DurableStore(
        data_dir,
        engine_config=EngineConfig(),
        gateway_config=config,
        num_workers=2,
    )
    gateway = Gateway(store, config)
    asyncio.run_coroutine_threadsafe(gateway.start(), loop).result(30)
    try:
        yield gateway
    finally:
        asyncio.run_coroutine_threadsafe(
            gateway.close(checkpoint=False), loop
        ).result(60)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        loop.close()


@pytest.fixture()
def gateway(tmp_path):
    with running_gateway(tmp_path / "data") as gw:
        yield gw


@pytest.fixture()
def client(gateway):
    with GatewayClient("127.0.0.1", gateway.port) as c:
        yield c


def seed_table(client, rows=50):
    rng = np.random.default_rng(0)
    client.create_table(
        "t",
        ATTRS,
        {
            "a": rng.integers(-100, 100, size=rows, dtype=np.int64).tolist(),
            "f": rng.standard_normal(rows).tolist(),
        },
    )


# ---------------------------------------------------------------------------
# The happy path, end to end
# ---------------------------------------------------------------------------


def test_full_round_trip(client):
    created = client.create_table("t", ATTRS, {"a": [1, 2, 3], "f": [0.5, 1.5, 2.5]})
    assert created["table"] == "t" and created["num_rows"] == 3

    appended = client.append("t", {"a": [4], "f": [3.5]})
    assert appended == {"table": "t", "appended": 1, "durable": True}

    answer = client.query("SELECT count(*), max(a), min(f) FROM t")
    assert answer["columns"] == ["count(*)", "max(a)", "min(f)"]
    assert answer["rows"] == [[4, 4, 0.5]]
    assert answer["num_rows"] == 1
    assert answer["tenant"] == "public"  # no API key -> default tenant
    assert answer["elapsed_ms"] >= 0

    tables = client.tables()
    assert tables == [{"name": "t", "num_rows": 4}]

    checkpoint = client.checkpoint()
    assert checkpoint["snapshot"].startswith("snap-")


def test_keep_alive_reuses_one_connection(client):
    seed_table(client)
    sock_before = client._conn.sock
    for _ in range(3):
        client.query("SELECT count(*) FROM t")
    assert client._conn.sock is sock_before


def test_query_timeout_maps_to_504(client):
    seed_table(client, rows=20000)
    with pytest.raises(GatewayHTTPError) as excinfo:
        client.query("SELECT sum((a + a)) FROM t", timeout_ms=1e-4)
    assert excinfo.value.status == 504
    assert excinfo.value.is_retryable


# ---------------------------------------------------------------------------
# Error mapping
# ---------------------------------------------------------------------------


def test_unknown_route_is_404(client):
    with pytest.raises(GatewayHTTPError) as excinfo:
        client._request("GET", "/v2/nope")
    assert excinfo.value.status == 404


def test_wrong_method_is_404(client):
    with pytest.raises(GatewayHTTPError) as excinfo:
        client._request("DELETE", "/v1/query")
    assert excinfo.value.status == 404


def test_query_unknown_table_is_404(client):
    with pytest.raises(GatewayHTTPError) as excinfo:
        client.query("SELECT count(*) FROM ghost")
    assert excinfo.value.status == 404
    assert excinfo.value.payload["error"] == "CatalogError"


def test_append_unknown_table_is_404(client):
    with pytest.raises(GatewayHTTPError) as excinfo:
        client.append("ghost", {"a": [1], "f": [1.0]})
    assert excinfo.value.status == 404


def test_sql_error_is_400(client):
    seed_table(client)
    with pytest.raises(GatewayHTTPError) as excinfo:
        client.query("SELEKT everything")
    assert excinfo.value.status == 400


def test_invalid_json_body_is_400(client):
    client._conn.request(
        "POST",
        "/v1/query",
        body=b"{not json",
        headers={"Content-Type": "application/json"},
    )
    response = client._conn.getresponse()
    payload = json.loads(response.read())
    assert response.status == 400
    assert "JSON" in payload["message"]


def test_bad_table_name_is_400(client):
    with pytest.raises(GatewayHTTPError) as excinfo:
        client.create_table("1bad", ATTRS)
    assert excinfo.value.status == 400
    assert excinfo.value.payload["error"] == "BadRequestError"


def test_bad_timeout_is_400(client):
    seed_table(client)
    for bad in ("soon", -5):
        with pytest.raises(GatewayHTTPError) as excinfo:
            client.query("SELECT count(*) FROM t", timeout_ms=bad)
        assert excinfo.value.status == 400


def test_ragged_append_is_400_and_not_applied(client):
    seed_table(client, rows=3)
    with pytest.raises(GatewayHTTPError) as excinfo:
        client.append("t", {"a": [1, 2], "f": [1.0]})
    assert excinfo.value.status == 400
    assert client.tables() == [{"name": "t", "num_rows": 3}]


# ---------------------------------------------------------------------------
# Tenancy
# ---------------------------------------------------------------------------


def test_api_keys_map_to_distinct_tenants(gateway, client):
    seed_table(client)
    with GatewayClient("127.0.0.1", gateway.port, api_key="alice") as alice:
        name = alice.query("SELECT count(*) FROM t")["tenant"]
    assert name.startswith("tenant-") and "alice" not in name  # digested
    with GatewayClient("127.0.0.1", gateway.port, api_key="bob") as bob:
        other = bob.query("SELECT count(*) FROM t")["tenant"]
    assert other != name
    assert set(gateway.tenants.tenants()) >= {name, other, "public"}


def test_tenant_quota_exhaustion_is_429(tmp_path):
    with running_gateway(tmp_path / "data", tenant_quota=1) as gateway:
        with GatewayClient("127.0.0.1", gateway.port, api_key="k") as client:
            seed_table(client)
            tenant = gateway.tenants.resolve("k")
            tenant.acquire()  # occupy the single slot out-of-band
            try:
                with pytest.raises(GatewayHTTPError) as excinfo:
                    client.query("SELECT count(*) FROM t")
            finally:
                tenant.release()
            assert excinfo.value.status == 429
            assert excinfo.value.is_retryable
            # after release the tenant is admitted again
            assert client.query("SELECT count(*) FROM t")["rows"] == [[50]]
            assert tenant.stats()["rejected_quota"] == 1


# ---------------------------------------------------------------------------
# Group commit
# ---------------------------------------------------------------------------


def test_concurrent_appends_coalesce_into_group_commits(tmp_path):
    with running_gateway(
        tmp_path / "data", group_commit_window=0.2
    ) as gateway:
        port = gateway.port
        with GatewayClient("127.0.0.1", port) as setup:
            setup.create_table("t", ATTRS)

        def one_append(i):
            with GatewayClient("127.0.0.1", port) as c:
                return c.append("t", {"a": [i], "f": [float(i)]})

        with ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = list(pool.map(one_append, range(8)))
        assert all(o["appended"] == 1 for o in outcomes)
        stats = gateway.batcher.stats()
        assert stats["items"] == 8
        assert stats["batches"] < 8  # riders actually shared commits
        with GatewayClient("127.0.0.1", port) as check:
            assert check.query("SELECT count(*) FROM t")["rows"] == [[8]]


# ---------------------------------------------------------------------------
# Health + metrics
# ---------------------------------------------------------------------------


def test_healthz_reports_healthy(client):
    status, payload = client.healthz()
    assert status == 200
    assert payload["status"] == "healthy"
    assert "breaker_states" not in payload


def test_metrics_exposition(client):
    seed_table(client)
    client.query("SELECT count(*) FROM t")
    with pytest.raises(GatewayHTTPError):
        client.query("SELECT count(*) FROM ghost")
    text = client.metrics()
    assert "# TYPE h2o_gateway_requests_total counter" in text
    assert 'h2o_gateway_requests_total{endpoint="query",status="200"}' in text
    assert 'h2o_gateway_requests_total{endpoint="query",status="404"}' in text
    assert "h2o_gateway_health_rung 0" in text
    assert "h2o_wal_records_total" in text
    assert 'tenant="public"' in text
    assert "h2o_store_tables 1" in text
    # the queried table's engine exports its pruning/clustering story
    assert 'h2o_scan_morsels_total{table="t"}' in text
    assert 'h2o_scan_morsels_pruned_total{table="t"}' in text
    assert 'h2o_table_pruned_fraction{table="t"}' in text
    assert 'h2o_table_clustered_fraction{table="t"} 0' in text
    # every exposed family is well-formed: HELP/TYPE precede samples
    for line in text.splitlines():
        assert line.startswith("#") or " " in line


def test_allowlist_rejects_unknown_key_with_401(tmp_path):
    with running_gateway(tmp_path / "data", api_keys=("secret",)) as gateway:
        with GatewayClient(
            "127.0.0.1", gateway.port, api_key="secret"
        ) as ok:
            seed_table(ok)
            assert ok.query("SELECT count(*) FROM t")["rows"] == [[50]]
        tenants_before = len(gateway.tenants.tenants())
        with GatewayClient(
            "127.0.0.1", gateway.port, api_key="wrong"
        ) as bad:
            with pytest.raises(GatewayHTTPError) as excinfo:
                bad.query("SELECT count(*) FROM t")
        assert excinfo.value.status == 401
        # rejection happens before any tenant state is allocated
        assert len(gateway.tenants.tenants()) == tenants_before
        # anonymous requests still share the default tenant
        with GatewayClient("127.0.0.1", gateway.port) as anon:
            assert anon.query("SELECT count(*) FROM t")["tenant"] == "public"


def test_tenant_cap_overflows_to_shared_tenant(tmp_path):
    with running_gateway(tmp_path / "data", max_tenants=2) as gateway:
        with GatewayClient("127.0.0.1", gateway.port) as anon:
            seed_table(anon)
        names = []
        for key in ("k1", "k2", "k3", "k4"):
            with GatewayClient(
                "127.0.0.1", gateway.port, api_key=key
            ) as c:
                names.append(c.query("SELECT count(*) FROM t")["tenant"])
        assert len(set(names[:2])) == 2  # first two keys get isolation
        assert names[2] == names[3] == "tenant-overflow"
        # registry stays bounded: 2 keyed + default + overflow
        assert len(gateway.tenants.tenants()) == 4
