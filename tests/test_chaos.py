"""The chaos acceptance gate: faults everywhere, answers identical.

Runs seeded chaos sequences through :func:`repro.testkit.run_chaos_sequence`:
every registered fault point (compile failures, online and offline
stitch aborts, worker deaths, transient execute failures) fires on a
seeded schedule while the engine and the service keep returning
bit-identical answers, the worker pool heals, and every absorbed fault
is matched against its degradation-evidence counter — a silently
swallowed fault fails the run (docs/resilience.md, docs/testing.md).

The default tier runs a quick smoke; the ``chaos`` marker tier (its own
CI job) runs the full 20-sequence acceptance gate with cumulative
coverage of all five fault points.
"""

from __future__ import annotations

import pytest

from repro.testkit import run_chaos_sequence
from repro.testkit.faults import ALL_POINTS


@pytest.mark.oracle
def test_chaos_smoke_single_sequence():
    result = run_chaos_sequence(0, workers=3, faults_per_point=2)
    assert result.modes == ("chaos-inline", "chaos-service")
    assert result.queries_checked > 0
    assert sum(result.fired_faults.values()) > 0


@pytest.mark.oracle
@pytest.mark.chaos
def test_chaos_twenty_sequences_cover_every_fault_point():
    coverage = {point: 0 for point in ALL_POINTS}
    total_queries = 0
    for seed in range(20):
        result = run_chaos_sequence(seed, workers=3, faults_per_point=2)
        total_queries += result.queries_checked
        for point, count in result.fired_faults.items():
            coverage[point] += count
    assert total_queries > 0
    missing = [point for point, count in coverage.items() if count == 0]
    assert not missing, (
        f"fault point(s) never fired across 20 chaos sequences: {missing}"
    )
