"""The very-wide-table neuroscience workload generator."""

import pytest

from repro.errors import WorkloadError
from repro.sql import analyze_query
from repro.workloads import neuro_schema, neuroscience_workload


class TestSchema:
    def test_default_width(self):
        schema = neuro_schema()
        assert schema.width == 112  # 12 covariates + 20 regions x 5 metrics

    def test_extra_metrics_widen(self):
        assert neuro_schema(extra_metrics=20).width == 112 + 20 * 20

    def test_expected_columns_exist(self):
        schema = neuro_schema()
        for name in ("age", "diagnosis", "vol_hippocampus", "thick_frontal"):
            assert name in schema


class TestWorkload:
    def test_queries_valid_against_schema(self):
        workload = neuroscience_workload(num_rows=50, rng=2)
        table = workload.make_table(rng=1)
        for query in workload.queries:
            analyze_query(query, table.schema)

    def test_session_structure(self):
        workload = neuroscience_workload(
            num_rows=50, num_sessions=3, queries_per_session=5, rng=2
        )
        assert len(workload) == 15

    def test_sessions_share_roi(self):
        """Queries within one session overlap heavily; sessions differ."""
        workload = neuroscience_workload(
            num_rows=50, num_sessions=2, queries_per_session=8, rng=4
        )
        covariates = {"age", "diagnosis"}

        def roi(query):
            return query.attributes - covariates

        session1 = [roi(q) for q in workload.queries[:8]]
        union1 = frozenset().union(*session1)
        for attrs in session1:
            assert attrs <= union1
        session2 = [roi(q) for q in workload.queries[8:]]
        union2 = frozenset().union(*session2)
        # Distinct focus: the two sessions' ROIs are not identical.
        assert union1 != union2

    def test_deterministic(self):
        first = neuroscience_workload(num_rows=50, rng=7)
        second = neuroscience_workload(num_rows=50, rng=7)
        assert [q.to_sql() for q in first.queries] == [
            q.to_sql() for q in second.queries
        ]

    def test_rejects_too_many_regions(self):
        with pytest.raises(WorkloadError):
            neuroscience_workload(regions_per_session=99)

    def test_row_major_spec(self):
        workload = neuroscience_workload(num_rows=50, rng=1)
        assert workload.table_spec.initial_layout == "row"

    def test_engine_runs_it(self):
        from repro.core.engine import H2OEngine

        workload = neuroscience_workload(
            num_rows=2000, num_sessions=2, queries_per_session=4, rng=3
        )
        engine = H2OEngine(workload.make_table(rng=1))
        for query in workload.queries:
            report = engine.execute(query)
            assert report.result is not None
