"""Schemas and the three physical layout classes."""

import numpy as np
import pytest

from repro.errors import LayoutError, SchemaError
from repro.sql import DataType
from repro.storage import ColumnGroup, Schema, SingleColumn, build_row_layout
from repro.storage.layout import LayoutKind
from repro.storage.schema import Attribute


class TestSchema:
    def test_basic_properties(self):
        schema = Schema.of("a", "b", "c")
        assert schema.width == 3
        assert schema.names == ("a", "b", "c")
        assert schema.row_bytes == 24
        assert "b" in schema and "z" not in schema

    def test_rejects_duplicates(self):
        with pytest.raises(SchemaError):
            Schema.of("a", "a")

    def test_rejects_empty(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_rejects_bad_name(self):
        with pytest.raises(SchemaError):
            Attribute("1abc")

    def test_index_and_dtype(self):
        schema = Schema(
            [Attribute("i"), Attribute("f", DataType.FLOAT64)]
        )
        assert schema.index_of("f") == 1
        assert schema.dtype_of("f") is DataType.FLOAT64
        with pytest.raises(SchemaError):
            schema.index_of("missing")

    def test_ordered_follows_schema_order(self):
        schema = Schema.of("a", "b", "c", "d")
        assert schema.ordered({"d", "a", "c"}) == ("a", "c", "d")

    def test_ordered_rejects_unknown(self):
        with pytest.raises(SchemaError):
            Schema.of("a").ordered(["a", "zz"])

    def test_subset(self):
        schema = Schema.of("a", "b", "c")
        sub = schema.subset(["c", "a"])
        assert sub.names == ("a", "c")

    def test_common_dtype_promotion(self):
        schema = Schema(
            [Attribute("i"), Attribute("f", DataType.FLOAT64)]
        )
        assert schema.common_dtype(["i"]) is DataType.INT64
        assert schema.common_dtype(["i", "f"]) is DataType.FLOAT64

    def test_equality_and_hash(self):
        assert Schema.of("a", "b") == Schema.of("a", "b")
        assert hash(Schema.of("a")) == hash(Schema.of("a"))


class TestColumnGroup:
    def make(self, rows=10, attrs=("x", "y", "z")):
        data = np.arange(rows * len(attrs)).reshape(rows, len(attrs))
        return ColumnGroup(attrs, data)

    def test_kind_and_width(self):
        group = self.make()
        assert group.kind is LayoutKind.GROUP
        assert group.width == 3
        assert group.num_rows == 10

    def test_full_width_is_row_kind(self):
        group = ColumnGroup(("x",), np.zeros((5, 1)), full_width=True)
        assert group.kind is LayoutKind.ROW

    def test_column_is_view(self):
        group = self.make()
        column = group.column("y")
        assert column[1] == group.data[1, 1]
        assert column.base is not None  # a view, not a copy

    def test_unknown_attribute(self):
        with pytest.raises(LayoutError):
            self.make().column("nope")

    def test_rejects_mismatched_width(self):
        with pytest.raises(LayoutError):
            ColumnGroup(("a", "b"), np.zeros((4, 3)))

    def test_rejects_1d_data(self):
        with pytest.raises(LayoutError):
            ColumnGroup(("a",), np.zeros(4))

    def test_rejects_duplicate_attrs(self):
        with pytest.raises(LayoutError):
            ColumnGroup(("a", "a"), np.zeros((4, 2)))

    def test_rejects_empty_attrs(self):
        with pytest.raises(LayoutError):
            ColumnGroup((), np.zeros((4, 0)))

    def test_data_made_contiguous(self):
        fortran = np.asfortranarray(np.zeros((6, 2)))
        group = ColumnGroup(("a", "b"), fortran)
        assert group.data.flags["C_CONTIGUOUS"]

    def test_gather_rows(self):
        group = self.make()
        picked = group.gather_rows(np.array([0, 2]))
        assert picked.shape == (2, 3)
        assert (picked[1] == group.data[2]).all()

    def test_block(self):
        group = self.make()
        block = group.block(2, 5)
        assert block.shape == (3, 3)

    def test_attr_set_cached(self):
        group = self.make()
        assert group.attr_set is group.attr_set  # cached object

    def test_contains(self):
        group = self.make()
        assert group.contains(["x", "z"])
        assert not group.contains(["x", "nope"])


class TestSingleColumn:
    def test_basics(self):
        column = SingleColumn("v", np.arange(7))
        assert column.kind is LayoutKind.COLUMN
        assert column.width == 1
        assert column.num_rows == 7
        assert (column.column("v") == np.arange(7)).all()

    def test_rejects_2d(self):
        with pytest.raises(LayoutError):
            SingleColumn("v", np.zeros((3, 2)))

    def test_wrong_name(self):
        with pytest.raises(LayoutError):
            SingleColumn("v", np.arange(3)).column("w")

    def test_nbytes(self):
        column = SingleColumn("v", np.arange(10, dtype=np.int64))
        assert column.nbytes == 80


class TestRowLayout:
    def test_build_from_columns(self):
        schema = Schema.of("a", "b")
        layout = build_row_layout(
            schema, {"a": np.arange(5), "b": np.arange(5) * 10}
        )
        assert layout.kind is LayoutKind.ROW
        assert (layout.column("b") == np.arange(5) * 10).all()

    def test_missing_column(self):
        schema = Schema.of("a", "b")
        with pytest.raises(LayoutError):
            build_row_layout(schema, {"a": np.arange(5)})

    def test_length_mismatch(self):
        schema = Schema.of("a", "b")
        with pytest.raises(LayoutError):
            build_row_layout(
                schema, {"a": np.arange(5), "b": np.arange(6)}
            )

    def test_block_ranges(self):
        layout = SingleColumn("v", np.arange(10))
        assert list(layout.block_ranges(4)) == [(0, 4), (4, 8), (8, 10)]
        with pytest.raises(LayoutError):
            list(layout.block_ranges(0))
