"""Adaptive clustering: row reorder, zone-map honesty, pruning lift.

Covers the clustering half of the encoded/clustered layout work:

- ``Table.reorder_rows`` permutes every layout atomically (answers are
  row-multiset-identical, one epoch bump, length-mismatch rejected);
- the reorganizer's full-sort and telemetry contract;
- the **append-tail regression**: after a clustered reorganization, an
  append of unsorted rows must leave zone maps *conservative* on the
  tail (no qualifying morsel pruned) and ``clustered_fraction`` honest
  (< 1 until re-clustered);
- the **pruning-lift regression**: a shuffled table starts nearly
  unprunable and the adaptive engine, hands-free, lifts a selective
  scan's pruned fraction above 0.9 with bit-identical answers;
- the switch ledger balances (``policy.switch_count`` equals the
  manager's creation log) after physical transforms.
"""

import numpy as np
import pytest

from repro.config import EngineConfig
from repro.core.engine import H2OEngine
from repro.core.reorganizer import Reorganizer
from repro.errors import LayoutError
from repro.storage import Schema, Table
from repro.storage.generator import shuffle_columns

ROWS = 20_000
MORSEL_ROWS = 512

ADAPT = dict(
    window_size=4,
    min_window=2,
    max_window=12,
    amortization_threshold=0.1,
    adaptive_clustering=True,
    cluster_rows_min=256,
    vector_size=MORSEL_ROWS,
    morsel_rows=MORSEL_ROWS,
)


def _shuffled_table(rows=ROWS, seed=17) -> Table:
    rng = np.random.default_rng(seed)
    columns = shuffle_columns(
        {
            "a1": np.arange(rows, dtype=np.int64),
            "a2": rng.integers(-(10**9), 10**9, rows, dtype=np.int64),
            "a3": rng.integers(-1000, 1000, rows, dtype=np.int64),
        },
        rng,
    )
    return Table.from_columns(
        "r", Schema.from_names(tuple(columns)), columns, "column"
    )


def test_reorder_rows_applies_one_permutation_to_all_layouts():
    table = _shuffled_table(rows=1000)
    before = {n: table.column(n).copy() for n in table.schema.names}
    epoch = table.layout_epoch
    perm = np.argsort(before["a1"], kind="stable")
    table.reorder_rows(perm, "a1", 1000)
    assert table.layout_epoch == epoch + 1
    for name in table.schema.names:
        assert np.array_equal(table.column(name), before[name][perm])
    assert np.array_equal(table.column("a1"), np.arange(1000))
    assert table.cluster_key == "a1"
    assert table.clustered_fraction == 1.0


def test_reorder_rows_rejects_wrong_length_permutation():
    table = _shuffled_table(rows=100)
    with pytest.raises(LayoutError):
        table.reorder_rows(np.arange(99), "a1", 99)


def test_reorganizer_cluster_sorts_and_reports():
    table = _shuffled_table()
    outcome = Reorganizer(EngineConfig(morsel_rows=MORSEL_ROWS)).cluster(
        table, "a1"
    )
    assert outcome is not None
    assert outcome.mode == "cluster-sort"
    column = table.column("a1")
    assert np.array_equal(column, np.sort(column))
    assert table.cluster_key == "a1"
    assert table.clustered_rows == ROWS
    # Re-clustering an already-sorted table is a no-op.
    assert (
        Reorganizer(EngineConfig(morsel_rows=MORSEL_ROWS)).cluster(
            table, "a1"
        )
        is None
    )


def test_append_tail_keeps_zone_maps_conservative():
    """Unsorted rows appended after clustering must never be pruned."""
    table = _shuffled_table()
    engine = H2OEngine(table, EngineConfig(**ADAPT))
    sql = f"SELECT sum(a3), count(*) FROM r WHERE a1 < {ROWS // 50}"
    for _ in range(12):
        if table.cluster_key == "a1":
            break
        engine.execute(sql)
    assert table.cluster_key == "a1"

    # Append rows that all qualify but land in the unclustered tail.
    rng = np.random.default_rng(3)
    extra = 700
    batch = {
        "a1": rng.integers(0, ROWS // 50, extra, dtype=np.int64),
        "a2": rng.integers(-(10**9), 10**9, extra, dtype=np.int64),
        "a3": rng.integers(-1000, 1000, extra, dtype=np.int64),
    }
    table.append_rows(batch)
    assert table.clustered_fraction < 1.0  # the tail is not clustered
    assert table.clustered_rows == ROWS

    report = engine.execute(sql)
    # Ground truth from raw arrays: every appended row qualifies.
    full_a1 = table.column("a1")
    full_a3 = table.column("a3")
    mask = full_a1 < ROWS // 50
    assert mask[ROWS:].all()
    want = [int(full_a3[mask].sum()), int(mask.sum())]
    assert list(report.result.scalars()) == want


def test_pruning_lift_regression():
    """Shuffled -> clustered lifts pruned_fraction < 0.1 to >= 0.9."""
    engine = H2OEngine(_shuffled_table(), EngineConfig(**ADAPT))
    sql = f"SELECT sum(a3), count(*) FROM r WHERE a1 < {ROWS // 50}"
    first = engine.execute(sql)
    baseline = first.morsels_pruned / max(1, first.morsels_total)
    assert baseline < 0.1
    answer = list(first.result.scalars())
    report = first
    for _ in range(12):
        if engine.table.cluster_key == "a1":
            break
        report = engine.execute(sql)
    assert engine.table.cluster_key == "a1"
    report = engine.execute(sql)
    assert report.morsels_pruned / max(1, report.morsels_total) >= 0.9
    assert list(report.result.scalars()) == answer
    # Engine-level telemetry accumulates the same story.
    stats = engine.stats()
    assert stats["cluster_key"] == "a1"
    assert stats["clustered_fraction"] == 1.0
    assert stats["morsels_total"] >= stats["morsels_pruned"] > 0


def test_switch_ledger_balances_after_physical_transforms():
    engine = H2OEngine(
        _shuffled_table(),
        EngineConfig(encoded_layouts=True, encoding_min_rows=256, **ADAPT),
    )
    sql = f"SELECT sum(a3), count(*) FROM r WHERE a1 < {ROWS // 50}"
    for _ in range(20):
        engine.execute(sql)
        engine.execute("SELECT count(*) FROM r WHERE a3 = 7")
    built = len(engine.manager.creation_log)
    assert engine.policy.switch_count == built
    assert built >= 1  # at least the clustering transform happened