"""The steady-state fast lane: plan-cache correctness and invalidation.

The fast lane may skip analysis, planning, costing and codegen-key
construction — but never correctness: a cached-plan answer must be
bit-for-bit the answer the cold path would have produced, and any event
that could change the cold path's decision (new layouts, retired
layouts, appended rows, refreshed candidates, drifted selectivity) must
drop the cached entry.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.config import EngineConfig
from repro.core.engine import H2OEngine
from repro.core.plan_cache import CachedPlan, PlanCache
from repro.sql import parse_query
from repro.storage import generate_table


def fresh_engine(plan_cache=True, rows=2_000, attrs=8, rng=7, **overrides):
    """An engine over its own private copy of the deterministic table."""
    table = generate_table("r", attrs, rows, rng=rng)
    config = EngineConfig(plan_cache=plan_cache, **overrides)
    return H2OEngine(table, config)


class TestFastLaneEngages:
    def test_repeat_shape_hits_the_cache(self):
        engine = fresh_engine()
        reports = [
            engine.execute(f"SELECT sum(a1 + a2) FROM r WHERE a3 > {v}")
            for v in (10, 20, 30, 40)
        ]
        assert not reports[0].plan_cache_hit  # cold
        assert all(r.plan_cache_hit for r in reports[1:])
        stats = engine.plan_cache.stats()
        assert stats["hits"] == 3 and stats["size"] >= 1

    def test_hit_answers_match_numpy(self):
        engine = fresh_engine()
        a1 = np.asarray(engine.table.column("a1"))
        a3 = np.asarray(engine.table.column("a3"))
        for v in (0, 10**8, -(10**8)):
            report = engine.execute(
                f"SELECT sum(a1), count(*) FROM r WHERE a3 > {v}"
            )
            mask = a3 > v
            assert report.result.scalars() == pytest.approx(
                (float(a1[mask].sum()), float(mask.sum()))
            )
        assert engine.reports[-1].plan_cache_hit

    def test_projection_hits_match_numpy(self):
        engine = fresh_engine()
        a1 = np.asarray(engine.table.column("a1"))
        a2 = np.asarray(engine.table.column("a2"))
        for v in (0, 5 * 10**8):
            report = engine.execute(f"SELECT a1 FROM r WHERE a2 < {v}")
            assert (report.result.column(0) == a1[a2 < v]).all()
        assert engine.reports[-1].plan_cache_hit

    def test_disabled_means_no_hits(self):
        engine = fresh_engine(plan_cache=False)
        for v in (1, 2, 3):
            engine.execute(f"SELECT sum(a1) FROM r WHERE a2 > {v}")
        assert not any(r.plan_cache_hit for r in engine.reports)
        assert engine.plan_cache.stats()["hits"] == 0

    def test_describe_reports_plan_cache(self):
        engine = fresh_engine()
        engine.execute("SELECT a1 FROM r")
        assert "plan cache" in engine.describe()


#: Recurring shapes for the equivalence property; ``{v}`` takes a drawn
#: literal so repeats share a shape signature without sharing constants.
PROPERTY_SHAPES = (
    "SELECT sum(a1 + a2), count(*) FROM r WHERE a3 > {v}",
    "SELECT a1, a4 FROM r WHERE a2 < {v}",
    "SELECT min(a5), max(a1) FROM r",
    "SELECT avg(a2), sum(a3 * a4) FROM r WHERE a1 > {v} AND a5 < {v}",
    "SELECT a2, a3, a5 FROM r WHERE a4 > {v}",
)


@given(
    st.lists(
        st.tuples(
            st.integers(0, len(PROPERTY_SHAPES) - 1),
            st.integers(-(10**9), 10**9),
        ),
        min_size=1,
        max_size=30,
    ),
    st.integers(0, 2**16),
)
@settings(max_examples=15, deadline=None)
def test_cached_plan_answers_equal_cold_path_answers(stream, seed):
    """Property: the fast lane never changes an answer.

    The same stream runs through two engines over identical data — one
    with the plan cache, one without — through whatever adaptation and
    layout churn the stream provokes; every result pair must agree.
    """
    table_on = generate_table("r", 5, 400, rng=seed)
    table_off = generate_table("r", 5, 400, rng=seed)
    engine_on = H2OEngine(table_on, EngineConfig(plan_cache=True))
    engine_off = H2OEngine(table_off, EngineConfig(plan_cache=False))
    for shape_index, literal in stream:
        sql = PROPERTY_SHAPES[shape_index].format(v=literal)
        hot = engine_on.execute(sql).result
        cold = engine_off.execute(sql).result
        assert hot.allclose(cold), sql


class TestEpochInvalidation:
    def test_append_rows_drops_cached_plans(self):
        engine = fresh_engine(rows=1_000, attrs=4)
        sql = "SELECT sum(a1), count(*) FROM r WHERE a2 > {v}"
        engine.execute(sql.format(v=5))
        before = engine.execute(sql.format(v=6))
        assert before.plan_cache_hit

        extra = {
            name: np.full(50, 10**8, dtype=np.int64)
            for name in engine.table.schema.names
        }
        engine.table.append_rows(extra)

        after = engine.execute(sql.format(v=7))
        assert not after.plan_cache_hit  # stale entry dropped on sight
        assert engine.plan_cache.stats()["invalidations"].get("epoch", 0) >= 1
        # The re-planned answer sees the appended tuples.
        a1 = np.asarray(engine.table.column("a1"))
        a2 = np.asarray(engine.table.column("a2"))
        mask = a2 > 7
        assert after.result.scalars() == pytest.approx(
            (float(a1[mask].sum()), float(mask.sum()))
        )
        # And the shape re-enters the fast lane under the new epoch.
        assert engine.execute(sql.format(v=8)).plan_cache_hit

    def test_new_layout_drops_cached_plans(self):
        engine = fresh_engine(rows=1_000, attrs=6)
        sql = "SELECT a1 FROM r WHERE a2 < {v}"
        engine.execute(sql.format(v=0))
        assert engine.execute(sql.format(v=1)).plan_cache_hit

        epoch = engine.table.layout_epoch
        engine.manager.build_group(("a1", "a2"))
        assert engine.table.layout_epoch > epoch

        report = engine.execute(sql.format(v=2))
        assert not report.plan_cache_hit
        assert engine.execute(sql.format(v=3)).plan_cache_hit

    def test_retired_layout_drops_cached_plans(self):
        engine = fresh_engine(rows=1_000, attrs=6)
        group, _ = engine.manager.build_group(("a3", "a4"))
        sql = "SELECT sum(a3 + a4) FROM r WHERE a5 > {v}"
        engine.execute(sql.format(v=0))
        assert engine.execute(sql.format(v=1)).plan_cache_hit

        engine.table.drop_layout(group)  # cold-group retirement path

        report = engine.execute(sql.format(v=2))
        assert not report.plan_cache_hit
        # The replacement plan no longer touches the dropped layout.
        assert report.result is not None
        assert engine.execute(sql.format(v=3)).plan_cache_hit

    def test_adaptation_churn_stays_correct(self):
        """Through materialization and candidate refreshes, repeats of
        one hot shape keep producing the first answer and eventually ride
        the fast lane again."""
        table = generate_table("r", 12, 10_000, rng=2)
        engine = H2OEngine(table, EngineConfig(window_size=8))
        sql = "SELECT sum(a1 + a2 + a3) FROM r WHERE a4 > 0 AND a5 < 0"
        reports = [engine.execute(sql) for _ in range(25)]
        for report in reports[1:]:
            assert reports[0].result.allclose(report.result)
        assert any(r.layout_created for r in reports)  # adaptation happened
        assert any(r.plan_cache_hit for r in reports[-5:])
        # Every query that built a layout re-planned on the cold path.
        assert all(
            not r.plan_cache_hit for r in reports if r.layout_created
        )


class TestDriftInvalidation:
    def test_selectivity_drift_evicts_the_entry(self):
        engine = fresh_engine(
            rows=2_000, attrs=4, selectivity_drift_band=0.2
        )
        sql = "SELECT a1 FROM r WHERE a2 < {v}"
        empty, full = -(2 * 10**9), 2 * 10**9
        for _ in range(4):  # learn: nothing qualifies
            engine.execute(sql.format(v=empty))
        for _ in range(4):  # same shape, everything qualifies
            engine.execute(sql.format(v=full))
        stats = engine.plan_cache.stats()
        assert stats["invalidations"].get("drift", 0) >= 1
        # After re-planning under the new selectivity the shape is hot again.
        assert engine.execute(sql.format(v=full)).plan_cache_hit


def _entry(sql: str, epoch: int = 0) -> CachedPlan:
    query = parse_query(sql)
    return CachedPlan(
        signature=query.shape_signature(),
        epoch=epoch,
        plan=None,
        plan_desc="test",
        select_attrs=tuple(sorted(query.select_attributes)),
        where_attrs=tuple(sorted(query.where_attributes)),
        all_attrs=tuple(sorted(query.attributes)),
        output_types=(),
        is_aggregation=query.is_aggregation,
        has_predicate=query.where is not None,
    )


class TestPlanCacheUnit:
    def test_lru_eviction_beyond_capacity(self):
        cache = PlanCache(capacity=2)
        first = _entry("SELECT a1 FROM r")
        second = _entry("SELECT a2 FROM r")
        third = _entry("SELECT a3 FROM r")
        cache.store(first)
        cache.store(second)
        cache.lookup(first.signature, 0)  # refresh first; second is LRU
        cache.store(third)
        assert len(cache) == 2 and cache.evictions == 1
        assert cache.lookup(second.signature, 0) is None
        assert cache.lookup(first.signature, 0) is first
        assert cache.lookup(third.signature, 0) is third

    def test_epoch_mismatch_drops_on_sight(self):
        cache = PlanCache()
        entry = _entry("SELECT a1 FROM r", epoch=3)
        cache.store(entry)
        assert cache.lookup(entry.signature, 4) is None
        assert len(cache) == 0
        assert cache.invalidations == {"epoch": 1}
        assert cache.misses == 1

    def test_invalidate_all_counts_reason(self):
        cache = PlanCache()
        cache.store(_entry("SELECT a1 FROM r"))
        cache.store(_entry("SELECT a2 FROM r"))
        assert cache.invalidate_all("candidates") == 2
        assert len(cache) == 0
        assert cache.invalidations == {"candidates": 2}

    def test_stats_shape(self):
        cache = PlanCache()
        entry = _entry("SELECT a1 FROM r")
        cache.store(entry)
        cache.lookup(entry.signature, 0)
        stats = cache.stats()
        assert stats == {
            "size": 1,
            "hits": 1,
            "misses": 0,
            "evictions": 0,
            "invalidations": {},
        }
        assert entry.hits == 1
