"""Encoded column layouts: codec round-trips and scan equivalence.

Property-based contracts (the ``test_io_roundtrip.py`` discipline):

- **decode round-trip** — ``encode_column`` then ``column()`` is
  bit-exact for int64 and float64, including NaN payloads, ``-0.0`` vs
  ``+0.0``, and infinities (float arrays compare by bit pattern);
- **encode -> filter -> decode** — every comparison operator evaluated
  by the compiled engine over an encoded replica answers bit-identically
  to the plain column path, for both codec families;
- **append re-encode** — ``extended()`` stays bit-exact and keeps the
  codec family.

Plus deterministic codec-selection and contract edge cases.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.config import EngineConfig
from repro.core.engine import H2OEngine
from repro.errors import LayoutError
from repro.storage import Schema, Table
from repro.storage.encoded_layout import (
    BitPackedColumn,
    DictEncodedColumn,
    encode_column,
)

#: Special float64 values the bit-exactness bar is really about.
SPECIAL_FLOATS = (
    0.0,
    -0.0,
    np.nan,
    np.inf,
    -np.inf,
    1.5,
    -1.5,
    2.0**-1022,  # smallest normal
    5e-324,  # subnormal
)


@st.composite
def int_columns(draw):
    """int64 arrays across pack/dict/none codec regimes."""
    num_rows = draw(st.integers(min_value=1, max_value=300))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    low = draw(st.integers(min_value=-(2**40), max_value=2**40))
    span = draw(
        st.sampled_from([1, 7, 200, 60_000, 70_000, 2**33, 2**50])
    )
    rng = np.random.default_rng(seed)
    return rng.integers(low, low + span, size=num_rows, dtype=np.int64)


@st.composite
def float_columns(draw):
    """float64 arrays biased toward the nasty special values."""
    num_rows = draw(st.integers(min_value=1, max_value=300))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    pool = np.asarray(SPECIAL_FLOATS, dtype=np.float64)
    values = pool[rng.integers(0, pool.shape[0], size=num_rows)]
    # Mix in ordinary values so dictionaries are not all-special.
    ordinary = rng.integers(-500, 500, size=num_rows).astype(np.float64)
    take = rng.random(num_rows) < 0.5
    return np.where(take, values, ordinary)


def _bits(values: np.ndarray) -> np.ndarray:
    if values.dtype == np.float64:
        return np.ascontiguousarray(values).view(np.int64)
    return values


@given(int_columns())
@settings(max_examples=80, deadline=None)
def test_int_roundtrip_bit_exact(values):
    encoded = encode_column("x", values)
    if encoded is None:
        return  # no codec shrinks this column; nothing to verify
    assert np.array_equal(encoded.column("x"), values)
    assert encoded.column("x").dtype == np.int64
    assert encoded.num_rows == values.shape[0]
    # The per-value scan cost always shrinks (total nbytes may not on
    # tiny columns — the dictionary side buffer is amortized over rows,
    # which is why the advisor gates on ``encoding_min_rows``).
    assert encoded.scan_bytes_per_value < values.dtype.itemsize


@given(float_columns())
@settings(max_examples=80, deadline=None)
def test_float_roundtrip_bit_exact(values):
    encoded = encode_column("x", values)
    if encoded is None:
        return
    assert isinstance(encoded, DictEncodedColumn)
    decoded = encoded.column("x")
    assert np.array_equal(_bits(decoded), _bits(values))
    # The dictionary holds each distinct bit pattern exactly once,
    # sorted (isnan, value, bits): -0.0 immediately before +0.0, NaNs
    # last with payloads preserved.
    dic = encoded.dictionary
    assert len(np.unique(_bits(dic))) == dic.shape[0]
    finite = dic[~np.isnan(dic)]
    assert np.array_equal(finite, np.sort(finite))


_FILTER_OPS = ("<", "<=", ">", ">=", "=", "!=")


def _scan_pair(values, literal, op, payload_rng):
    """(plain answer, encoded answer) for one filtered projection+agg."""
    payload = payload_rng.integers(-1000, 1000, values.shape[0]).astype(
        np.int64
    )
    schema = Schema.from_names(("x", "p"))
    sql = (
        f"SELECT sum(p), count(*) FROM r WHERE x {op} {literal}"
    )
    answers = []
    for with_replica in (False, True):
        table = Table.from_columns(
            "r", schema, {"x": values.copy(), "p": payload.copy()}, "column"
        )
        if with_replica:
            replica = encode_column("x", table.column("x"))
            if replica is None:
                return None  # nothing to compare
            table.add_layout(replica)
        engine = H2OEngine(
            table,
            EngineConfig(
                window_size=10**6, max_window=10**6, dynamic_window=False
            ),
        )
        result = engine.execute(sql).result
        answers.append(_bits(np.asarray(result.data)).tobytes())
    return answers


@given(
    int_columns(),
    st.integers(min_value=-(2**41), max_value=2**41),
    st.sampled_from(_FILTER_OPS),
    st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=60, deadline=None)
def test_int_encode_filter_decode(values, literal, op, payload_seed):
    pair = _scan_pair(
        values, literal, op, np.random.default_rng(payload_seed)
    )
    if pair is None:
        return
    assert pair[0] == pair[1]


@given(
    float_columns(),
    st.sampled_from((0.0, -0.0, 1.5, -1.5, 0.25, 500.0, -500.0, 3.0)),
    st.sampled_from(_FILTER_OPS),
    st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=60, deadline=None)
def test_float_encode_filter_decode(values, literal, op, payload_seed):
    pair = _scan_pair(
        values, literal, op, np.random.default_rng(payload_seed)
    )
    if pair is None:
        return
    assert pair[0] == pair[1]


@given(int_columns(), int_columns())
@settings(max_examples=40, deadline=None)
def test_extended_reencodes_bit_exact(values, extra):
    encoded = encode_column("x", values)
    if encoded is None:
        return
    try:
        grown = encoded.extended({"x": extra})
    except LayoutError:
        # The appended values outgrew the codec family; the table-level
        # contract (drop the replica) is covered below.
        return
    assert grown.codec == encoded.codec
    assert np.array_equal(
        grown.column("x"), np.concatenate([values, extra])
    )


def test_append_outgrowing_codec_drops_replica():
    """An append no codec can represent must not fail the append."""
    schema = Schema.from_names(("x",))
    table = Table.from_columns(
        "r", schema, {"x": np.arange(100, dtype=np.int64)}, "column"
    )
    replica = encode_column("x", table.column("x"), force="pack")
    table.add_layout(replica)
    assert any(
        layout.kind.value == "encoded" for layout in table.layouts
    )
    # Span beyond uint32: pack cannot re-encode; dict is not forced.
    table.append_rows({"x": np.asarray([2**61], dtype=np.int64)})
    assert table.num_rows == 101
    assert not any(
        layout.kind.value == "encoded" for layout in table.layouts
    )
    assert table.column("x")[-1] == 2**61


@given(float_columns(), float_columns())
@settings(max_examples=40, deadline=None)
def test_extended_float_reencodes_bit_exact(values, extra):
    encoded = encode_column("x", values)
    if encoded is None:
        return
    grown = encoded.extended({"x": extra})
    assert np.array_equal(
        _bits(grown.column("x")), _bits(np.concatenate([values, extra]))
    )


# Deterministic codec-selection and contract edges ---------------------------


def test_codec_selection():
    narrow = np.arange(200, dtype=np.int64) + 10**12
    packed = encode_column("x", narrow)
    assert isinstance(packed, BitPackedColumn)
    assert packed.codes.dtype == np.uint8
    assert packed.offset == 10**12

    wide_low_card = np.repeat(
        np.asarray([-(10**12), 0, 10**12], dtype=np.int64), 50
    )
    dictionary = encode_column("x", wide_low_card)
    assert isinstance(dictionary, DictEncodedColumn)
    assert dictionary.cardinality == 3

    # High-cardinality wide ints still pack into 32 bits when the span
    # allows; a full-range column refuses to encode.
    span32 = np.random.default_rng(0).integers(
        0, 2**31, size=8192, dtype=np.int64
    )
    pack32 = encode_column("x", span32)
    assert isinstance(pack32, BitPackedColumn)
    assert pack32.codes.dtype == np.uint32

    full_range = np.random.default_rng(0).integers(
        -(2**62), 2**62, size=8192, dtype=np.int64
    )
    assert encode_column("x", full_range) is None

    assert encode_column("x", np.empty(0, dtype=np.int64)) is None


def test_force_codec_and_float_pack_rejected():
    values = np.arange(10_000, dtype=np.int64)
    forced = encode_column(
        "x", values, dict_max_cardinality=np.inf, force="dict"
    )
    assert isinstance(forced, DictEncodedColumn)
    with pytest.raises(LayoutError):
        encode_column("x", np.zeros(4, dtype=np.float64), force="pack")


def test_kernel_buffer_and_signature_contract():
    values = np.asarray([3, 1, 3, 7], dtype=np.int64)
    packed = encode_column("x", values, force="pack")
    assert len(packed.kernel_buffers()) == 1
    assert packed.encoding_signature()[0] == "pack"
    # offset/max_code are burned into generated source, so they must be
    # part of the cache identity.
    assert packed.offset in packed.encoding_signature()

    dic = encode_column("x", values, force="dict")
    codes, dictionary = dic.kernel_buffers()
    assert np.array_equal(dictionary.take(codes), values)
    assert dic.encoding_signature() == ("dict", "uint8", "int64")
