"""QueryResult semantics and executor statistics/accounting."""

import numpy as np
import pytest

from repro.config import EngineConfig
from repro.errors import ExecutionError
from repro.execution import Executor, QueryResult, enumerate_plans
from repro.execution.strategies import AccessPlan, ExecutionStrategy
from repro.sql import analyze_query, parse_query
from repro.storage import generate_table


class TestQueryResult:
    def test_scalar_row(self):
        result = QueryResult.scalar_row(["x", "y"], [1.0, 2.0])
        assert result.num_rows == 1
        assert result.scalars() == (1.0, 2.0)

    def test_scalars_requires_single_row(self):
        result = QueryResult(["x"], np.zeros((3, 1)))
        with pytest.raises(ExecutionError):
            result.scalars()

    def test_from_blocks_empty(self):
        result = QueryResult.from_blocks(["a", "b"], [])
        assert result.num_rows == 0
        assert result.num_columns == 2

    def test_from_blocks_concatenates(self):
        blocks = [np.ones((2, 1)), np.zeros((3, 1))]
        result = QueryResult.from_blocks(["v"], blocks)
        assert result.num_rows == 5
        assert list(result.column("v")) == [1, 1, 0, 0, 0]

    def test_column_by_name_and_index(self):
        result = QueryResult(["p", "q"], np.arange(6).reshape(3, 2))
        assert (result.column("q") == result.column(1)).all()
        with pytest.raises(ExecutionError):
            result.column("nope")

    def test_shape_validation(self):
        with pytest.raises(ExecutionError):
            QueryResult(["a"], np.zeros(3))
        with pytest.raises(ExecutionError):
            QueryResult(["a", "b"], np.zeros((3, 1)))

    def test_allclose_semantics(self):
        a = QueryResult(["v"], np.array([[1.0], [2.0]]))
        b = QueryResult(["v"], np.array([[1.0], [2.0 + 1e-12]]))
        c = QueryResult(["v"], np.array([[1.0]]))
        d = QueryResult(["v", "w"], np.ones((2, 2)))
        assert a.allclose(b)
        assert not a.allclose(c)  # row-count mismatch
        assert not a.allclose(d)  # column-count mismatch

    def test_allclose_nan_equal(self):
        a = QueryResult.scalar_row(["v"], [float("nan")])
        b = QueryResult.scalar_row(["v"], [float("nan")])
        assert a.allclose(b)

    def test_empty_results_allclose(self):
        a = QueryResult.empty(["v"])
        b = QueryResult.empty(["v"])
        assert a.allclose(b)

    def test_rows(self):
        result = QueryResult(["a", "b"], np.arange(4).reshape(2, 2))
        assert result.rows() == [(0, 1), (2, 3)]


@pytest.fixture(scope="module")
def table():
    return generate_table("r", 8, 4000, rng=13, initial_layout="column")


class TestExecutorAccounting:
    def test_late_reports_intermediates(self, table):
        executor = Executor(EngineConfig(use_codegen=False))
        info = analyze_query(
            parse_query("SELECT a1 + a2 FROM r WHERE a3 < 0"), table.schema
        )
        plan = AccessPlan(
            ExecutionStrategy.LATE, table.narrowest_cover(info.all_attrs)
        )
        _result, stats = executor.run_plan(info, plan)
        # Selection vector + gathered columns + per-op intermediates.
        assert stats.intermediate_bytes > 0
        assert stats.strategy is ExecutionStrategy.LATE
        assert not stats.used_codegen

    def test_generated_path_reports_codegen_time(self, table):
        executor = Executor(EngineConfig(operator_cache=False))
        info = analyze_query(
            parse_query("SELECT sum(a1) FROM r"), table.schema
        )
        plan = enumerate_plans(table, info)[0]
        _result, stats = executor.run_plan(info, plan)
        assert stats.used_codegen
        assert stats.codegen_seconds > 0
        assert not stats.codegen_cache_hit

    def test_cache_hit_reported(self, table):
        executor = Executor(EngineConfig())
        info = analyze_query(
            parse_query("SELECT sum(a2) FROM r"), table.schema
        )
        plan = enumerate_plans(table, info)[0]
        executor.run_plan(info, plan)
        _result, stats = executor.run_plan(info, plan)
        assert stats.codegen_cache_hit

    def test_rows_out(self, table):
        executor = Executor(EngineConfig())
        info = analyze_query(
            parse_query("SELECT a1 FROM r WHERE a2 < 0"), table.schema
        )
        plan = enumerate_plans(table, info)[0]
        result, stats = executor.run_plan(info, plan)
        assert stats.rows_out == result.num_rows

    def test_attribute_free_plan_description(self, table):
        executor = Executor(EngineConfig())
        info = analyze_query(parse_query("SELECT count(*) FROM r"), table.schema)
        plan = enumerate_plans(table, info)[0]
        result, stats = executor.run_plan(info, plan)
        assert stats.plan == "attribute-free"
        assert result.scalars() == (4000.0,)


class TestServedFraction:
    def test_no_groups_is_zero(self, table):
        from repro.core.engine import H2OEngine

        engine = H2OEngine(
            generate_table("r", 8, 1000, rng=1, initial_layout="column")
        )
        engine.execute("SELECT a1, a2 FROM r")
        assert engine._served_fraction() == 0.0

    def test_row_layout_does_not_count(self):
        from repro.core.engine import H2OEngine

        engine = H2OEngine(
            generate_table("r", 8, 1000, rng=1, initial_layout="row")
        )
        engine.execute("SELECT a1, a2 FROM r")
        assert engine._served_fraction() == 0.0

    def test_group_serves_contained_queries(self):
        from repro.core.engine import H2OEngine
        from repro.core.layout_manager import LayoutManager

        engine = H2OEngine(
            generate_table("r", 8, 1000, rng=1, initial_layout="column")
        )
        LayoutManager(engine.table).build_group(["a1", "a2", "a3"])
        engine.execute("SELECT a1, a2 FROM r")
        engine.execute("SELECT a7 FROM r")
        assert engine._served_fraction() == pytest.approx(0.5)
