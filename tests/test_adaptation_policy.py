"""The regret-bounded switching policy (repro/core/adaptation_policy.py).

Three layers:

1. pure policy-level unit tests (ledger accrual, deferral accounting,
   export/restore, config validation);
2. Hypothesis property tests: on *arbitrary* observation/attempt
   streams the guarded policy maintains the regret invariant, and with
   ``hedging_factor == 0`` it is decision-identical to greedy;
3. engine-level tests: deferrals surface in ``QueryReport`` /
   ``engine.stats()``, a huge hedging factor suppresses inline
   reorganization entirely, and hedge-0 guarded replays a scenario
   with the same per-query observable behaviour as greedy.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.config import EngineConfig
from repro.core.adaptation_policy import (
    MAX_LEDGER_ENTRIES,
    AdaptationPolicy,
    GuardedPolicy,
    make_policy,
)
from repro.core.advisor import CandidateLayout
from repro.core.engine import H2OEngine
from repro.errors import AdaptationError
from repro.sql.parser import parse_query
from repro.workloads.scenarios import build_scenario

# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

#: A pool of distinct attribute groups for generated candidates.
ATTR_POOL = [
    ("a1", "a2"),
    ("a2", "a3"),
    ("a3", "a4", "a5"),
    ("a1", "a4"),
    ("a6",),
    ("a2", "a5", "a6"),
]


def candidate(
    pool_index: int, benefit: float, cost: float, freq: int = 2
) -> CandidateLayout:
    attrs = ATTR_POOL[pool_index % len(ATTR_POOL)]
    return CandidateLayout(
        attrs=attrs,
        frequency=freq,
        benefit_per_use=benefit,
        build_cost=cost,
        origin="merge",
    )


def guarded(hedging: float) -> GuardedPolicy:
    return GuardedPolicy(
        EngineConfig(adaptation_policy="guarded", hedging_factor=hedging)
    )


def drive(policy: AdaptationPolicy, events) -> None:
    """Replay ``events`` = [(pool_index, benefit, cost, attempt)]."""
    for index, (pool_index, benefit, cost, attempt) in enumerate(events):
        cand = candidate(pool_index, benefit, cost)
        policy.observe(
            frozenset(cand.attrs), frozenset(), [cand], index
        )
        if attempt and policy.allow_materialization(cand, index):
            policy.note_materialized(cand, index)


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------


def test_unknown_policy_rejected():
    with pytest.raises(AdaptationError):
        EngineConfig(adaptation_policy="optimistic")


def test_negative_hedging_rejected():
    with pytest.raises(AdaptationError):
        EngineConfig(hedging_factor=-0.5)


def test_factory_picks_class():
    assert type(make_policy(EngineConfig())) is AdaptationPolicy
    assert isinstance(
        make_policy(EngineConfig(adaptation_policy="guarded")),
        GuardedPolicy,
    )


# ---------------------------------------------------------------------------
# Pure policy behaviour
# ---------------------------------------------------------------------------


def test_guarded_accrues_then_opens():
    policy = guarded(2.0)
    cand = candidate(0, benefit=1.0, cost=3.0)
    # Needs accrued >= 2 * 3 = 6, i.e. six observations of benefit 1.
    for i in range(5):
        policy.observe(frozenset(cand.attrs), frozenset(), [cand], i)
        assert not policy.would_allow(cand)
        assert not policy.allow_materialization(cand, i)
    assert policy.deferrals == 5
    policy.observe(frozenset(cand.attrs), frozenset(), [cand], 5)
    assert policy.would_allow(cand)
    assert policy.allow_materialization(cand, 5)
    policy.note_materialized(cand, 5)
    assert policy.switch_count == 1
    record = policy.switches[0]
    assert record.accrued >= 2.0 * record.build_cost - 1e-9
    assert policy.regret_bound_satisfied()
    # The built candidate's ledger entry is retired.
    assert cand.attr_set not in policy.ledger


def test_observe_only_accrues_serving_candidates():
    policy = guarded(1.0)
    served = candidate(0, benefit=1.0, cost=10.0)
    bystander = candidate(4, benefit=1.0, cost=10.0)
    policy.observe(
        frozenset(served.attrs), frozenset(), [served, bystander], 0
    )
    assert policy.ledger[served.attr_set].accrued == 1.0
    assert bystander.attr_set not in policy.ledger


def test_negative_benefit_never_decreases_accrual():
    policy = guarded(1.0)
    cand = candidate(0, benefit=-5.0, cost=1.0)
    policy.observe(frozenset(cand.attrs), frozenset(), [cand], 0)
    assert policy.ledger[cand.attr_set].accrued == 0.0


def test_ledger_bounded_with_eviction():
    policy = guarded(1.0)
    for i in range(MAX_LEDGER_ENTRIES + 40):
        attrs = (f"x{i}", f"y{i}")
        cand = CandidateLayout(
            attrs=attrs,
            frequency=1,
            benefit_per_use=float(i),
            build_cost=1e9,
            origin="merge",
        )
        policy.observe(frozenset(attrs), frozenset(), [cand], i)
    assert len(policy.ledger) == MAX_LEDGER_ENTRIES
    # The survivors are the highest-accrual entries (coldest evicted).
    kept = {min(e.accrued for e in policy.ledger.values())}
    assert min(kept) >= 40.0


def test_export_restore_round_trip():
    policy = guarded(2.0)
    drive(
        policy,
        [(0, 1.0, 1.0, True)] * 4 + [(1, 2.0, 100.0, True)] * 3,
    )
    state = policy.export()
    fresh = guarded(2.0)
    fresh.restore(state)
    assert fresh.export() == state
    # Corrupt snapshots degrade to a clean ledger, never a crash.
    fresh.restore({"entries": "garbage", "switches": 7})
    assert fresh.ledger == {}
    assert fresh.switch_count == 0


def test_restore_keeps_configured_hedging_factor():
    policy = guarded(4.0)
    policy.restore(guarded(1.0).export())
    assert policy.hedging_factor == 4.0


# ---------------------------------------------------------------------------
# Hypothesis: the regret invariant on arbitrary streams
# ---------------------------------------------------------------------------

events_strategy = st.lists(
    st.tuples(
        st.integers(0, len(ATTR_POOL) - 1),
        st.floats(
            -2.0, 50.0, allow_nan=False, allow_infinity=False
        ),
        st.floats(
            0.0, 100.0, allow_nan=False, allow_infinity=False
        ),
        st.booleans(),
    ),
    max_size=80,
)


@given(
    events_strategy,
    st.floats(0.0, 8.0, allow_nan=False, allow_infinity=False),
)
@settings(max_examples=120, deadline=None)
def test_regret_invariant_on_any_stream(events, hedging):
    """Whatever the stream does, every granted switch was hedged."""
    policy = guarded(hedging)
    drive(policy, events)
    assert policy.regret_bound_satisfied()
    for record in policy.switches:
        assert record.accrued >= hedging * record.build_cost - 1e-9
    # Totals stay consistent with the (untruncated) evidence list.
    assert policy.switch_count == len(policy.switches)
    assert policy.invested_cost == pytest.approx(
        sum(r.build_cost for r in policy.switches)
    )


@given(events_strategy)
@settings(max_examples=80, deadline=None)
def test_hedge_zero_is_greedy_decision_for_decision(events):
    """``hedging_factor == 0`` reduces guarded to greedy exactly."""
    greedy_policy = AdaptationPolicy(EngineConfig())
    zero = guarded(0.0)
    for index, (pool_index, benefit, cost, attempt) in enumerate(events):
        cand = candidate(pool_index, benefit, cost)
        ripe_g = greedy_policy.observe(
            frozenset(cand.attrs), frozenset(), [cand], index
        )
        ripe_z = zero.observe(
            frozenset(cand.attrs), frozenset(), [cand], index
        )
        # Neither ever requests the fast-lane bypass...
        assert ripe_g is False and ripe_z is False
        if not attempt:
            continue
        allowed_g = greedy_policy.allow_materialization(cand, index)
        allowed_z = zero.allow_materialization(cand, index)
        # ...and every materialization decision matches.
        assert allowed_g is True and allowed_z is True
        greedy_policy.note_materialized(cand, index)
        zero.note_materialized(cand, index)
    assert zero.deferrals == greedy_policy.deferrals == 0
    assert zero.switch_count == greedy_policy.switch_count


# ---------------------------------------------------------------------------
# Engine integration
# ---------------------------------------------------------------------------

ENGINE_KNOBS = dict(
    window_size=4, min_window=2, max_window=12,
    amortization_threshold=1.0,
)


def replay(scenario, config):
    engine = H2OEngine(scenario.make_table(), config)
    reports = []
    for op in scenario.ops:
        if op[0] == "query":
            reports.append(engine.execute(parse_query(op[1])))
        else:
            engine.table.append_rows(
                scenario.append_batch(op[1], op[2])
            )
    return engine, reports


def test_engine_surfaces_deferrals():
    scenario = build_scenario("ping-pong", 0, phases=4, phase_len=10,
                              num_rows=512)
    engine, reports = replay(
        scenario,
        EngineConfig(
            adaptation_policy="guarded", hedging_factor=3.0,
            **ENGINE_KNOBS,
        ),
    )
    assert engine.policy.deferrals > 0
    assert any(r.reorg_deferred for r in reports)
    stats = engine.stats()
    assert stats["policy"]["policy"] == "guarded"
    assert stats["policy"]["deferrals"] == engine.policy.deferrals
    assert "policy" in engine.adaptation_state()
    assert "policy: switches=" in engine.describe() or "policy" in (
        engine.describe()
    )


def test_huge_hedging_never_reorganizes_inline():
    scenario = build_scenario("ping-pong", 0, phases=3, phase_len=8,
                              num_rows=512)
    engine, reports = replay(
        scenario,
        EngineConfig(
            adaptation_policy="guarded", hedging_factor=1e12,
            **ENGINE_KNOBS,
        ),
    )
    assert len(engine.manager.creation_log) == 0
    assert engine.policy.deferrals > 0
    assert engine.policy.regret_bound_satisfied()


def test_hedge_zero_engine_matches_greedy():
    scenario = build_scenario("periodic-shift", 1, phases=4,
                              phase_len=10, num_rows=512)
    _, greedy_reports = replay(
        scenario, EngineConfig(**ENGINE_KNOBS)
    )
    _, zero_reports = replay(
        scenario,
        EngineConfig(
            adaptation_policy="guarded", hedging_factor=0.0,
            **ENGINE_KNOBS,
        ),
    )
    assert [
        (r.layout_created, r.plan_cache_hit, r.reorg_deferred)
        for r in greedy_reports
    ] == [
        (r.layout_created, r.plan_cache_hit, r.reorg_deferred)
        for r in zero_reports
    ]


def test_guarded_eventually_builds_and_records_switch():
    scenario = build_scenario("trickle-append", 0, rounds=6,
                              queries_per_round=10, num_rows=512)
    engine, _ = replay(
        scenario,
        EngineConfig(
            adaptation_policy="guarded", hedging_factor=1.5,
            **ENGINE_KNOBS,
        ),
    )
    assert engine.policy.switch_count >= 1
    for record in engine.policy.switches:
        assert record.accrued >= 1.5 * record.build_cost - 1e-9
    assert engine.policy.regret_bound_satisfied()
