"""Expression AST: construction, introspection, rendering, validation."""

import pytest

from repro.errors import AnalysisError
from repro.sql import (
    Aggregate,
    AggregateFunc,
    BooleanOp,
    Comparison,
    Not,
    col,
    lit,
)
from repro.sql.expressions import (
    Arithmetic,
    ArithmeticOp,
    BoolConnective,
    ComparisonOp,
    conjunction_of,
    flatten_conjuncts,
)


class TestConstruction:
    def test_operator_sugar_builds_arithmetic(self):
        expr = col("a") + col("b") * 2
        assert isinstance(expr, Arithmetic)
        assert expr.op is ArithmeticOp.ADD
        assert isinstance(expr.right, Arithmetic)
        assert expr.right.op is ArithmeticOp.MUL

    def test_reflected_operators(self):
        expr = 3 - col("a")
        assert isinstance(expr, Arithmetic)
        assert expr.op is ArithmeticOp.SUB
        assert expr.left == lit(3)

    def test_comparison_sugar(self):
        pred = col("a") < 5
        assert isinstance(pred, Comparison)
        assert pred.op is ComparisonOp.LT

    def test_eq_ne_methods(self):
        assert col("a").eq(1).op is ComparisonOp.EQ
        assert col("a").ne(1).op is ComparisonOp.NE

    def test_invalid_operand_type(self):
        with pytest.raises(TypeError):
            col("a") + "not a number"


class TestIntrospection:
    def test_columns_collects_all_refs(self):
        expr = (col("a") + col("b")) * col("a")
        assert expr.columns() == frozenset({"a", "b"})

    def test_literal_has_no_columns(self):
        assert lit(5).columns() == frozenset()

    def test_aggregate_detection(self):
        agg = Aggregate(AggregateFunc.SUM, col("a") + col("b"))
        assert agg.contains_aggregate()
        assert not (col("a") + 1).contains_aggregate()

    def test_aggregates_iterates_nested(self):
        expr = Aggregate(AggregateFunc.SUM, col("a")) + Aggregate(
            AggregateFunc.MIN, col("b")
        )
        assert len(list(expr.aggregates())) == 2


class TestValidation:
    def test_no_aggregate_in_predicate(self):
        agg = Aggregate(AggregateFunc.SUM, col("a"))
        with pytest.raises(AnalysisError):
            Comparison(ComparisonOp.LT, agg, lit(5))

    def test_no_nested_aggregates(self):
        inner = Aggregate(AggregateFunc.SUM, col("a"))
        with pytest.raises(AnalysisError):
            Aggregate(AggregateFunc.MAX, inner)

    def test_count_star_allows_none(self):
        assert Aggregate(AggregateFunc.COUNT, None).arg is None

    def test_other_aggs_require_argument(self):
        with pytest.raises(AnalysisError):
            Aggregate(AggregateFunc.SUM, None)


class TestRendering:
    def test_to_sql_roundtrippable_text(self):
        expr = (col("a") + col("b")) * lit(2)
        assert expr.to_sql() == "((a + b) * 2)"

    def test_boolean_to_sql(self):
        pred = BooleanOp(
            BoolConnective.AND, col("a") < 1, col("b") > 2
        )
        assert "AND" in pred.to_sql()

    def test_not_to_sql(self):
        assert Not(col("a") < 1).to_sql().startswith("NOT")

    def test_count_star_sql(self):
        assert Aggregate(AggregateFunc.COUNT, None).to_sql() == "count(*)"


class TestEqualityHashing:
    def test_structural_equality(self):
        assert (col("a") + 1) == (col("a") + 1)
        assert (col("a") + 1) != (col("a") + 2)

    def test_hashable_for_cache_keys(self):
        seen = {col("a") + 1: "x"}
        assert seen[col("a") + 1] == "x"


class TestConjuncts:
    def test_flatten_returns_all_and_factors(self):
        pred = conjunction_of([col("a") < 1, col("b") < 2, col("c") < 3])
        assert len(flatten_conjuncts(pred)) == 3

    def test_or_not_flattened(self):
        pred = BooleanOp(BoolConnective.OR, col("a") < 1, col("b") < 2)
        assert flatten_conjuncts(pred) == (pred,)

    def test_mixed_and_or(self):
        orpart = BooleanOp(BoolConnective.OR, col("a") < 1, col("b") < 2)
        pred = BooleanOp(BoolConnective.AND, orpart, col("c") < 3)
        conjuncts = flatten_conjuncts(pred)
        assert len(conjuncts) == 2
        assert orpart in conjuncts

    def test_empty_conjunction(self):
        assert conjunction_of([]) is None
        assert flatten_conjuncts(None) == ()

    def test_flipped_comparison(self):
        assert ComparisonOp.LT.flipped() is ComparisonOp.GT
        assert ComparisonOp.EQ.flipped() is ComparisonOp.EQ
