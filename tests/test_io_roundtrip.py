"""Save/load round-trips for ``storage.io`` — incl. the dotted-stem fix.

``Path.with_suffix`` treats everything after the last dot as an
extension, so ``save_table(t, "data.v2")`` used to scatter its files as
``data.npz``/``data.json`` — and two tables saved as ``data.v1`` and
``data.v2`` silently overwrote each other.  ``_sibling`` appends instead
of replacing; these tests pin that down along with full-fidelity content
round-trips (every dtype, empty tables, NaN bit patterns).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StorageError
from repro.sql.types import DataType
from repro.storage import Schema, Table, generate_table
from repro.storage.io import _sibling, load_table, save_table
from repro.storage.schema import Attribute


def make_table(name="t", columns=None):
    columns = columns if columns is not None else {
        "a": np.array([1, 2, 3], dtype=np.int64),
        "b": np.array([0.5, -1.5, 2.25], dtype=np.float64),
    }
    schema = Schema(
        Attribute(attr, DataType.from_any(values.dtype))
        for attr, values in columns.items()
    )
    return Table.from_columns(name, schema, columns)


def assert_tables_equal(left: Table, right: Table):
    assert left.name == right.name
    assert left.schema.names == right.schema.names
    assert left.num_rows == right.num_rows
    for attr in left.schema.names:
        a, b = left.column(attr), right.column(attr)
        assert a.dtype == b.dtype
        # bytes-level: NaNs compare equal, -0.0 != 0.0
        assert a.tobytes() == b.tobytes()


# ---------------------------------------------------------------------------
# The dotted-stem regression
# ---------------------------------------------------------------------------


def test_dotted_stem_keeps_full_name(tmp_path):
    save_table(make_table(), tmp_path / "data.v2")
    assert (tmp_path / "data.v2.npz").exists()
    assert (tmp_path / "data.v2.json").exists()
    # the with_suffix behaviour would have produced these instead:
    assert not (tmp_path / "data.npz").exists()
    assert not (tmp_path / "data.json").exists()


def test_dotted_stems_do_not_collide(tmp_path):
    one = make_table("one", {"a": np.arange(3, dtype=np.int64)})
    two = make_table("two", {"a": np.arange(5, dtype=np.int64)})
    save_table(one, tmp_path / "data.v1")
    save_table(two, tmp_path / "data.v2")
    assert load_table(tmp_path / "data.v1").name == "one"
    assert load_table(tmp_path / "data.v2").name == "two"


@pytest.mark.parametrize("spelling", ["tbl", "tbl.npz", "tbl.json"])
def test_own_suffix_spellings_address_same_files(tmp_path, spelling):
    save_table(make_table(), tmp_path / "tbl")
    assert_tables_equal(make_table(), load_table(tmp_path / spelling))


def test_sibling_strips_one_own_suffix_only():
    from pathlib import Path

    assert _sibling(Path("x/data.v2"), ".npz") == Path("x/data.v2.npz")
    assert _sibling(Path("x/tbl.npz"), ".json") == Path("x/tbl.json")
    # a file literally named ".npz" is not treated as an empty stem
    assert _sibling(Path("x/.npz"), ".json") == Path("x/.npz.json")


# ---------------------------------------------------------------------------
# Content round-trips
# ---------------------------------------------------------------------------


def test_roundtrip_all_dtypes(tmp_path):
    table = make_table(
        "mixed",
        {
            "i": np.array([-(2**62), 0, 2**62], dtype=np.int64),
            "f": np.array([1e-300, -1e300, 3.5], dtype=np.float64),
        },
    )
    save_table(table, tmp_path / "mixed")
    assert_tables_equal(table, load_table(tmp_path / "mixed"))


def test_roundtrip_empty_table(tmp_path):
    table = make_table(
        "empty",
        {
            "a": np.array([], dtype=np.int64),
            "b": np.array([], dtype=np.float64),
        },
    )
    save_table(table, tmp_path / "empty")
    loaded = load_table(tmp_path / "empty")
    assert loaded.num_rows == 0
    assert_tables_equal(table, loaded)


def test_roundtrip_nan_and_inf_bit_exact(tmp_path):
    values = np.array(
        [np.nan, -np.nan, np.inf, -np.inf, -0.0, 0.0], dtype=np.float64
    )
    table = make_table("weird", {"f": values})
    save_table(table, tmp_path / "weird")
    loaded = load_table(tmp_path / "weird")
    assert loaded.column("f").tobytes() == values.tobytes()


def test_roundtrip_generated_table(tmp_path):
    table = generate_table("g", num_attrs=6, num_rows=500, rng=11)
    save_table(table, tmp_path / "g")
    assert_tables_equal(table, load_table(tmp_path / "g"))


def test_load_missing_raises(tmp_path):
    with pytest.raises(StorageError, match="no saved table"):
        load_table(tmp_path / "nope")


def test_load_detects_row_count_mismatch(tmp_path):
    import json

    save_table(make_table(), tmp_path / "tbl")
    meta_path = tmp_path / "tbl.json"
    meta = json.loads(meta_path.read_text())
    meta["num_rows"] += 1
    meta_path.write_text(json.dumps(meta))
    with pytest.raises(StorageError, match="row count mismatch"):
        load_table(tmp_path / "tbl")
