"""Selection vectors: refinement, gathering, materialization accounting."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.execution import SelectionVector


class TestConstruction:
    def test_all_rows_virgin(self):
        sel = SelectionVector.all_rows(10)
        assert sel.is_all
        assert sel.count == 10
        assert sel.selectivity == 1.0
        assert sel.materialized_bytes == 0

    def test_from_mask(self):
        mask = np.array([True, False, True, True, False])
        sel = SelectionVector.from_mask(mask)
        assert not sel.is_all
        assert sel.count == 3
        assert list(sel.positions) == [0, 2, 3]

    def test_from_mask_rejects_nonbool(self):
        with pytest.raises(ExecutionError):
            SelectionVector.from_mask(np.array([1, 0, 1]))

    def test_negative_rows(self):
        with pytest.raises(ExecutionError):
            SelectionVector(-1)

    def test_empty_relation_selectivity(self):
        assert SelectionVector.all_rows(0).selectivity == 1.0


class TestRefine:
    def test_refine_virgin(self):
        sel = SelectionVector.all_rows(4)
        refined = sel.refine(np.array([True, False, False, True]))
        assert list(refined.positions) == [0, 3]

    def test_refine_chains_absolute_positions(self):
        sel = SelectionVector.all_rows(6)
        sel = sel.refine(np.array([1, 0, 1, 0, 1, 1], dtype=bool))
        # positions now [0, 2, 4, 5]; keep 2nd and 4th of those
        sel = sel.refine(np.array([False, True, False, True]))
        assert list(sel.positions) == [2, 5]

    def test_refine_length_mismatch(self):
        sel = SelectionVector.all_rows(4)
        with pytest.raises(ExecutionError):
            sel.refine(np.array([True, False]))

    def test_refine_to_empty(self):
        sel = SelectionVector.all_rows(3).refine(np.zeros(3, dtype=bool))
        assert sel.count == 0
        assert sel.selectivity == 0.0

    def test_materialized_bytes_accumulate(self):
        sel = SelectionVector.all_rows(100)
        refined = sel.refine(np.ones(100, dtype=bool))
        assert refined.materialized_bytes > 0


class TestGather:
    def test_virgin_gather_no_copy(self):
        column = np.arange(5)
        sel = SelectionVector.all_rows(5)
        assert sel.gather(column) is column
        assert sel.materialized_bytes == 0

    def test_gather_selected(self):
        column = np.arange(10) * 10
        sel = SelectionVector(10, np.array([1, 3]))
        gathered = sel.gather(column)
        assert list(gathered) == [10, 30]
        assert sel.materialized_bytes >= gathered.nbytes

    def test_gather_length_check(self):
        sel = SelectionVector.all_rows(5)
        with pytest.raises(ExecutionError):
            sel.gather(np.arange(6))

    def test_gather_rows_matrix(self):
        matrix = np.arange(12).reshape(6, 2)
        sel = SelectionVector(6, np.array([0, 5]))
        rows = sel.gather_rows(matrix)
        assert rows.shape == (2, 2)
        assert (rows[1] == matrix[5]).all()

    def test_positions_materialize_virgin(self):
        sel = SelectionVector.all_rows(4)
        assert list(sel.positions) == [0, 1, 2, 3]
        assert sel.materialized_bytes > 0
