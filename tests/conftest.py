"""Shared fixtures: small deterministic tables and engine configs."""

import time

import numpy as np
import pytest

from repro.config import EngineConfig
from repro.storage import Schema, Table, generate_table, wide_schema


def wait_until(predicate, timeout=30.0, interval=0.01, message="condition"):
    """Bounded condition polling — the only sanctioned way to wait.

    Returns as soon as ``predicate()`` is truthy; raises ``AssertionError``
    after ``timeout`` seconds.  Tests must never synchronize on a fixed
    ``time.sleep`` (a slow CI runner turns that into a flake); they wait
    on an observable condition with a generous deadline instead.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    if predicate():
        return
    raise AssertionError(f"timed out after {timeout}s waiting for {message}")


@pytest.fixture(scope="session")
def small_schema() -> Schema:
    return wide_schema(8)


@pytest.fixture()
def column_table() -> Table:
    """2k rows x 8 attrs, stored column-major."""
    return generate_table("r", 8, 2000, rng=7, initial_layout="column")


@pytest.fixture()
def row_table() -> Table:
    """Same data as ``column_table`` but stored row-major."""
    return generate_table("r", 8, 2000, rng=7, initial_layout="row")


@pytest.fixture()
def wide_table() -> Table:
    """5k rows x 40 attrs, column-major (for adaptation tests)."""
    return generate_table("r", 40, 5000, rng=11, initial_layout="column")


@pytest.fixture()
def config() -> EngineConfig:
    return EngineConfig()


@pytest.fixture()
def no_codegen_config() -> EngineConfig:
    return EngineConfig(use_codegen=False)


def reference_columns(table: Table) -> dict:
    """Ground-truth per-attribute arrays for result checking."""
    return {name: np.asarray(table.column(name)) for name in table.schema.names}
