"""Edge cases for the literal extractor and shape signatures.

The fast lane's correctness rests on one invariant: two queries map to
the same :class:`~repro.sql.signature.QueryShapeSignature` **iff** a
kernel compiled for one can be re-bound with the other's literal vector.
These tests pin the tricky corners of that invariant — IN lists of
different lengths, literals duplicated across clauses, and int-vs-float
drift — end to end through the engine's plan cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import H2OEngine, generate_table, parse_query
from repro.config import EngineConfig
from repro.sql.signature import (
    literal_extractor,
    masked_sql,
    query_literals,
    shape_signature,
)


@pytest.fixture(scope="module")
def table():
    return generate_table("r", num_attrs=8, num_rows=2000, rng=11)


# ---------------------------------------------------------------------------
# IN lists of varying length
# ---------------------------------------------------------------------------


class TestInLists:
    def test_in_desugars_to_or_chain_of_masked_equalities(self):
        query = parse_query("SELECT a1 FROM r WHERE a2 IN (1, 2, 3)")
        masked = masked_sql(query.where)
        assert masked.count("?") == 3
        assert masked.count("OR") == 2

    def test_different_in_lengths_are_different_shapes(self):
        two = parse_query("SELECT sum(a1) FROM r WHERE a2 IN (1, 2)")
        three = parse_query("SELECT sum(a1) FROM r WHERE a2 IN (1, 2, 3)")
        assert shape_signature(two) != shape_signature(three)
        # The structural part alone must already differ: a 2-element IN
        # has one fewer comparison than a 3-element IN.
        assert shape_signature(two).masked_where != (
            shape_signature(three).masked_where
        )

    def test_same_length_in_rebinds_literals_in_order(self):
        first = parse_query("SELECT sum(a1) FROM r WHERE a2 IN (10, 20, 30)")
        second = parse_query("SELECT sum(a1) FROM r WHERE a2 IN (7, 5, 9)")
        assert shape_signature(first) == shape_signature(second)
        extract = literal_extractor(first)
        assert extract(first) == (10, 20, 30)
        assert extract(second) == (7, 5, 9)

    def test_in_fast_lane_result_matches_cold_execution(self, table):
        """A kernel cached for one IN query answers another correctly."""
        engine = H2OEngine(table, config=EngineConfig())
        engine.execute("SELECT count(*) FROM r WHERE a1 IN (1, 2, 3)")
        repeat_sql = "SELECT count(*) FROM r WHERE a1 IN (4, 5, 6)"
        repeat = engine.execute(repeat_sql)
        fresh = H2OEngine(table, config=EngineConfig()).execute(repeat_sql)
        assert repeat.result.scalars() == fresh.result.scalars()


# ---------------------------------------------------------------------------
# Duplicate literals across clauses
# ---------------------------------------------------------------------------


class TestDuplicateLiterals:
    def test_duplicates_keep_positional_identity(self):
        query = parse_query(
            "SELECT sum(a1 + 5) FROM r WHERE a2 > 5 AND a3 < 5"
        )
        # All three 5s appear, in canonical order: predicate conjuncts
        # first (pre-order), then the aggregate arguments.
        assert query_literals(query) == [5, 5, 5]

    def test_duplicates_rebind_independently(self):
        base = parse_query(
            "SELECT sum(a1 + 5) FROM r WHERE a2 > 5 AND a3 < 5"
        )
        repeat = parse_query(
            "SELECT sum(a1 + 7) FROM r WHERE a2 > 1 AND a3 < 3"
        )
        assert shape_signature(base) == shape_signature(repeat)
        extract = literal_extractor(base)
        # Position, not value, decides the binding: the predicate
        # literals come first, the select literal last.
        assert extract(repeat) == (1, 3, 7)

    def test_duplicate_aggregates_fold_in_literal_order(self):
        """``sum(x+1), sum(x+1)`` dedups to one accumulator's literals."""
        folded = parse_query("SELECT sum(a1 + 1), sum(a1 + 1) FROM r")
        distinct = parse_query("SELECT sum(a1 + 1), sum(a1 + 2) FROM r")
        assert query_literals(folded) == [1]
        assert query_literals(distinct) == [1, 2]
        # Masked text collides; param_types keeps the shapes apart.
        assert shape_signature(folded) != shape_signature(distinct)

    def test_duplicate_fast_lane_correctness(self, table):
        engine = H2OEngine(table, config=EngineConfig())
        engine.execute(
            "SELECT sum(a1 + 5) FROM r WHERE a2 > 5 AND a3 < 5"
        )
        repeat_sql = "SELECT sum(a1 + 100) FROM r WHERE a2 > -50 AND a3 < 50"
        warm = engine.execute(repeat_sql)
        cold = H2OEngine(table, config=EngineConfig()).execute(repeat_sql)
        np.testing.assert_allclose(
            warm.result.scalars(), cold.result.scalars()
        )


# ---------------------------------------------------------------------------
# Int vs. float drift
# ---------------------------------------------------------------------------


class TestNumericTypeDrift:
    def test_int_and_float_literals_are_different_shapes(self):
        as_int = parse_query("SELECT sum(a1) FROM r WHERE a2 > 5")
        as_float = parse_query("SELECT sum(a1) FROM r WHERE a2 > 5.0")
        assert shape_signature(as_int).masked_where == (
            shape_signature(as_float).masked_where
        )
        assert shape_signature(as_int).param_types == ("int",)
        assert shape_signature(as_float).param_types == ("float",)
        assert shape_signature(as_int) != shape_signature(as_float)

    def test_mixed_drift_in_one_clause(self):
        a = parse_query("SELECT a1 FROM r WHERE a2 > 1 AND a3 < 2.0")
        b = parse_query("SELECT a1 FROM r WHERE a2 > 1.0 AND a3 < 2")
        assert shape_signature(a).param_types == ("int", "float")
        assert shape_signature(b).param_types == ("float", "int")
        assert shape_signature(a) != shape_signature(b)

    def test_drift_does_not_poison_the_plan_cache(self, table):
        """Int-shape cache entries never serve float-literal repeats."""
        engine = H2OEngine(table, config=EngineConfig())
        int_report = engine.execute("SELECT sum(a1 + 1) FROM r")
        float_report = engine.execute("SELECT sum(a1 + 1.5) FROM r")
        cold = H2OEngine(table, config=EngineConfig())
        np.testing.assert_allclose(
            float_report.result.scalars(),
            cold.execute("SELECT sum(a1 + 1.5) FROM r").result.scalars(),
        )
        np.testing.assert_allclose(
            int_report.result.scalars(),
            cold.execute("SELECT sum(a1 + 1) FROM r").result.scalars(),
        )
