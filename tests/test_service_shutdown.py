"""Shutdown semantics: closing always surfaces ``ServiceClosedError``.

The contract (ISSUE 3 satellite): after ``close()`` — of a session or
of the whole service — every further submission, and every ticket that
was still queued, fails with the *documented*
:class:`~repro.errors.ServiceClosedError`, never a bare queue error,
and the admission gauge returns to zero so nothing leaks.
"""

from __future__ import annotations

import pytest

from repro import H2OService, generate_table
from repro.config import EngineConfig
from repro.errors import ServiceClosedError, ServiceError


def make_service(num_workers=2, **kwargs):
    service = H2OService(
        config=EngineConfig(),
        num_workers=num_workers,
        max_pending=16,
        **kwargs,
    )
    service.register(generate_table("r", num_attrs=4, num_rows=256, rng=3))
    return service


def test_session_submit_after_session_close_raises_closed_error():
    service = make_service()
    try:
        session = service.session("client-a")
        assert session.execute("SELECT sum(a1) FROM r", timeout=30.0)
        session.close()
        assert session.closed
        with pytest.raises(ServiceClosedError):
            session.submit("SELECT sum(a1) FROM r")
        with pytest.raises(ServiceClosedError):
            session.execute("SELECT sum(a1) FROM r")
        # Other sessions on the same service are unaffected.
        other = service.session("client-b")
        assert other.execute("SELECT count(*) FROM r", timeout=30.0)
    finally:
        service.close()


def test_service_submit_after_close_raises_closed_error():
    service = make_service()
    service.close()
    with pytest.raises(ServiceClosedError):
        service.submit("SELECT sum(a1) FROM r")
    # A session routed through the closed service gets the same error.
    session = service.session("late-client")
    with pytest.raises(ServiceClosedError):
        session.execute("SELECT sum(a1) FROM r")
    # ServiceClosedError is a ServiceError (callers catching the broad
    # class keep working), but never a queue/attribute error.
    try:
        service.submit("SELECT count(*) FROM r")
    except ServiceError:
        pass


def test_close_fails_queued_tickets_with_closed_error():
    """Tickets still queued at close() resolve, not hang (0 workers)."""
    service = make_service(num_workers=0)
    futures = [
        service.submit(f"SELECT sum(a{1 + i % 4}) FROM r") for i in range(5)
    ]
    assert service.admission.in_flight == 5
    service.close()
    for future in futures:
        with pytest.raises(ServiceClosedError):
            future.result(5.0)
    assert service.admission.in_flight == 0


def test_close_is_idempotent():
    service = make_service()
    service.close()
    service.close()
    assert service.closed
