"""Restart-recovery: the crash oracle plus targeted learned-state checks.

The oracle (repro/testkit/restart.py) kills a durable store mid-workload
and demands bit-identical answers and an intact adaptation state after
recovery.  The targeted test drives an engine through a real adaptation
ramp (repeated projection shape → materialized column group → grown
window → warm plan cache) and asserts each piece survives a checkpoint +
SIGKILL-equivalent + recovery.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import EngineConfig, GatewayConfig
from repro.gateway.persist import DurableStore
from repro.testkit.restart import restart_case

pytestmark = pytest.mark.oracle


@pytest.mark.parametrize("seed", [0, 1, 2, 5, 8])
def test_restart_oracle(seed, tmp_path):
    evidence = restart_case(seed, base_dir=tmp_path)
    assert evidence.ops > 0
    assert evidence.queries_compared > 0


def test_learned_state_survives_recovery(tmp_path):
    """The tentpole's core claim, stated directly: recovery restores the
    *learned* store, not just the rows."""
    config = EngineConfig(window_size=10, min_window=4, max_window=30)
    gateway_config = GatewayConfig(snapshot_every_records=0)

    def open_store():
        return DurableStore(
            tmp_path / "d",
            engine_config=config,
            gateway_config=gateway_config,
            num_workers=1,
        )

    rng = np.random.default_rng(42)
    store = open_store()
    store.create_table(
        "t",
        [("a", "int64"), ("b", "int64"), ("c", "int64"), ("d", "int64")],
        {
            name: rng.integers(-500, 500, size=2000, dtype=np.int64)
            for name in "abcd"
        },
    )
    # Ramp: one repeated shape makes (a, b) hot together.
    for i in range(40):
        store.execute(f"SELECT a, b FROM t WHERE a > {i * 7 % 300}")
    engine = store.system.engine_for("t")
    window_size = engine.window.size
    queries_seen = engine.monitor.queries_seen
    affinity = engine.monitor.select_affinity.matrix.copy()
    layouts = sorted(
        tuple(l.attrs) for l in store.system.catalog.get("t").layouts
    )
    assert ("a", "b") in layouts  # the ramp actually materialized a group
    assert window_size != config.window_size  # and the window moved

    store.checkpoint()
    # Post-checkpoint activity lives only in the WAL tail.
    store.append(
        "t", {name: rng.integers(-500, 500, size=5) for name in "abcd"}
    )
    expected = store.execute("SELECT a, b FROM t WHERE a > 7").result.data
    store.abandon()  # SIGKILL-equivalent

    recovered = open_store()
    try:
        stats = recovered.stats()
        assert stats["recovered"]
        assert stats["replayed_records"] == 1  # the tail append

        engine = recovered.system.engine_for("t")
        assert engine.window.size == window_size
        assert engine.monitor.queries_seen == queries_seen
        assert np.array_equal(
            engine.monitor.select_affinity.matrix, affinity
        )
        recovered_layouts = sorted(
            tuple(l.attrs)
            for l in recovered.system.catalog.get("t").layouts
        )
        assert recovered_layouts == layouts

        # Warm plan cache: the very first repeat of the ramped shape
        # hits, i.e. the adaptation ramp was not re-paid.
        report = recovered.execute("SELECT a, b FROM t WHERE a > 7")
        assert report.plan_cache_hit
        assert report.result.data.tobytes() == expected.tobytes()
    finally:
        recovered.close(checkpoint=False)


def test_guarded_policy_ledger_survives_recovery(tmp_path):
    """The switching policy's debt ledger is learned state too: a
    guarded store that accrued (and deferred) toward a candidate must
    not restart its accrual from zero after a crash."""
    config = EngineConfig(
        window_size=6,
        min_window=3,
        max_window=18,
        amortization_threshold=1.0,
        adaptation_policy="guarded",
        hedging_factor=1e9,  # high enough that the ramp only defers
    )
    gateway_config = GatewayConfig(snapshot_every_records=0)

    def open_store():
        return DurableStore(
            tmp_path / "d",
            engine_config=config,
            gateway_config=gateway_config,
            num_workers=1,
        )

    rng = np.random.default_rng(7)
    store = open_store()
    store.create_table(
        "t",
        [("a", "int64"), ("b", "int64"), ("c", "int64"), ("d", "int64")],
        {
            name: rng.integers(-500, 500, size=2000, dtype=np.int64)
            for name in "abcd"
        },
    )
    for i in range(40):
        store.execute(f"SELECT a, b FROM t WHERE a > {i * 7 % 300}")
    engine = store.system.engine_for("t")
    exported = engine.policy.export()
    assert engine.policy.name == "guarded"
    assert engine.policy.deferrals > 0  # the guard actually refused
    assert exported["entries"]  # and accrued toward the candidate

    store.checkpoint()
    store.abandon()  # SIGKILL-equivalent

    recovered = open_store()
    try:
        engine = recovered.system.engine_for("t")
        assert engine.policy.export() == exported
        # The restored ledger keeps accruing (not a frozen snapshot):
        # once the next adaptation run re-proposes the hot candidate,
        # more of the same shape strictly grows its entry.  (Recovery
        # clears the candidate pool, so run past an adaptation window.)
        before = max(
            e.accrued for e in engine.policy.ledger.values()
        )
        for i in range(40):
            recovered.execute(
                f"SELECT a, b FROM t WHERE a > {i * 11 % 300}"
            )
        after = max(
            e.accrued for e in engine.policy.ledger.values()
        )
        assert after > before
    finally:
        recovered.close(checkpoint=False)


def test_recovery_without_adaptation_seeding(tmp_path):
    """seed_adaptation=False still recovers rows (state is optional)."""
    store = DurableStore(tmp_path / "d", num_workers=1)
    store.create_table("t", [("a", "int64")], {"a": [1, 2, 3]})
    store.execute("SELECT sum(a) FROM t")
    store.close(checkpoint=True)
    recovered = DurableStore(
        tmp_path / "d", num_workers=1, seed_adaptation=False
    )
    try:
        result = recovered.execute("SELECT sum(a) FROM t").result
        assert result.data.tolist() == [[6]]
        # only the verification query above — nothing was re-seeded
        assert recovered.system.engine_for("t").monitor.queries_seen == 1
    finally:
        recovered.close(checkpoint=False)
