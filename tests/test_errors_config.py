"""Error hierarchy and configuration validation."""

import pytest

from repro import errors
from repro.config import EngineConfig, MachineProfile, scaled_rows


class TestErrorHierarchy:
    def test_all_errors_derive_from_h2oerror(self):
        for name in (
            "SQLError",
            "ParseError",
            "AnalysisError",
            "StorageError",
            "SchemaError",
            "LayoutError",
            "CatalogError",
            "ExecutionError",
            "CodegenError",
            "CostModelError",
            "AdaptationError",
            "WorkloadError",
            "BenchmarkError",
        ):
            assert issubclass(getattr(errors, name), errors.H2OError)

    def test_parse_error_carries_position(self):
        err = errors.ParseError("bad token", position=17)
        assert err.position == 17
        assert "17" in str(err)

    def test_parse_error_without_position(self):
        err = errors.ParseError("bad token")
        assert err.position is None

    def test_schema_error_is_storage_error(self):
        assert issubclass(errors.SchemaError, errors.StorageError)


class TestMachineProfile:
    def test_words_per_line(self):
        machine = MachineProfile(cache_line_bytes=64, word_bytes=8)
        assert machine.words_per_line == 8

    def test_frozen(self):
        machine = MachineProfile()
        with pytest.raises(AttributeError):
            machine.cache_line_bytes = 128


class TestEngineConfig:
    def test_defaults_valid(self):
        config = EngineConfig()
        assert config.window_size == 20
        assert config.min_window <= config.window_size <= config.max_window

    def test_rejects_nonpositive_window(self):
        with pytest.raises(errors.AdaptationError):
            EngineConfig(window_size=0)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(errors.AdaptationError):
            EngineConfig(window_size=10, min_window=20, max_window=30)

    def test_rejects_bad_shrink_factor(self):
        with pytest.raises(errors.AdaptationError):
            EngineConfig(window_shrink_factor=1.5)

    def test_rejects_nonpositive_vector(self):
        with pytest.raises(errors.AdaptationError):
            EngineConfig(vector_size=0)

    def test_with_overrides(self):
        config = EngineConfig().with_overrides(use_codegen=False)
        assert config.use_codegen is False
        assert EngineConfig().use_codegen is True


class TestScale:
    def test_scaled_rows_default(self, monkeypatch):
        monkeypatch.delenv("H2O_SCALE", raising=False)
        assert scaled_rows(100_000) == 100_000

    def test_scaled_rows_scales(self, monkeypatch):
        monkeypatch.setenv("H2O_SCALE", "0.5")
        assert scaled_rows(100_000) == 50_000

    def test_scaled_rows_minimum(self, monkeypatch):
        monkeypatch.setenv("H2O_SCALE", "0.0001")
        assert scaled_rows(100_000, minimum=1000) == 1000

    def test_invalid_scale(self, monkeypatch):
        monkeypatch.setenv("H2O_SCALE", "banana")
        with pytest.raises(ValueError):
            scaled_rows(10)

    def test_negative_scale(self, monkeypatch):
        monkeypatch.setenv("H2O_SCALE", "-2")
        with pytest.raises(ValueError):
            scaled_rows(10)
