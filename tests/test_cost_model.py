"""The cost model: Eq. 2 behaviours the adaptive decisions rely on."""

import pytest

from repro.core.cost_model import (
    CostModel,
    GroupSpec,
    SelectivityEstimator,
    count_arithmetic_ops,
)
from repro.errors import CostModelError
from repro.execution import enumerate_plans
from repro.execution.strategies import AccessPlan, ExecutionStrategy
from repro.sql import analyze_query, parse_query
from repro.storage import generate_table
from repro.storage.stitcher import stitch_group


class TestGroupSpec:
    def test_validation(self):
        with pytest.raises(CostModelError):
            GroupSpec(width=0, useful=0, num_rows=10)
        with pytest.raises(CostModelError):
            GroupSpec(width=2, useful=3, num_rows=10)

    def test_interning(self):
        assert GroupSpec.of(3, 2, 100) is GroupSpec.of(3, 2, 100)


class TestSelectivityEstimator:
    def test_heuristics(self):
        est = SelectivityEstimator()
        lt = parse_query("SELECT a FROM r WHERE a < 1").where
        eq = parse_query("SELECT a FROM r WHERE a = 1").where
        conj = parse_query("SELECT a FROM r WHERE a < 1 AND b < 2").where
        disj = parse_query("SELECT a FROM r WHERE a < 1 OR b < 2").where
        assert 0 < est.estimate(eq) < est.estimate(lt) < 1
        assert est.estimate(conj) < est.estimate(lt)
        assert est.estimate(disj) > est.estimate(lt)

    def test_no_predicate_is_one(self):
        assert SelectivityEstimator().estimate(None) == 1.0

    def test_observation_overrides_heuristic(self):
        est = SelectivityEstimator(blend=1.0)
        pred = parse_query("SELECT a FROM r WHERE a < 1").where
        est.observe("key", 0.9)
        assert est.estimate(pred, "key") == pytest.approx(0.9)

    def test_blending(self):
        est = SelectivityEstimator(blend=0.5)
        est.observe("k", 0.0)
        est.observe("k", 1.0)
        assert est.estimate(parse_query("SELECT a FROM r WHERE a<1").where, "k") == pytest.approx(0.5)

    def test_observation_clamped(self):
        est = SelectivityEstimator()
        est.observe("k", 5.0)
        assert est._observed["k"] == 1.0


class TestAccessCosts:
    def setup_method(self):
        self.model = CostModel()

    def test_sequential_scales_with_width(self):
        narrow = self.model.sequential_access(GroupSpec.of(5, 5, 10_000))
        wide = self.model.sequential_access(GroupSpec.of(50, 5, 10_000))
        assert wide > narrow

    def test_stride_penalizes_wide_layouts(self):
        packed = self.model.column_stride_access(GroupSpec.of(1, 1, 10_000))
        scattered = self.model.column_stride_access(
            GroupSpec.of(50, 1, 10_000)
        )
        assert scattered > packed

    def test_gather_caps_at_full_scan(self):
        spec = GroupSpec.of(1, 1, 10_000)
        sparse = self.model.gather_access(spec, 10)
        dense = self.model.gather_access(spec, 10_000)
        assert sparse < dense

    def test_intermediate_monotone(self):
        assert self.model.intermediate(10_000) > self.model.intermediate(10)

    def test_costs_nonnegative(self):
        spec = GroupSpec.of(3, 2, 1000)
        assert self.model.sequential_access(spec) > 0
        assert self.model.column_stride_access(spec) > 0
        assert self.model.gather_access(spec, 5) > 0


class TestPlanCosts:
    @pytest.fixture(scope="class")
    def table(self):
        t = generate_table("r", 30, 20_000, rng=1, initial_layout="column")
        group, _ = stitch_group(
            t.layouts, tuple(f"a{i}" for i in range(1, 11)), t.schema
        )
        t.add_layout(group)
        row, _ = stitch_group(
            t.layouts, t.schema.names, t.schema, full_width=True
        )
        t.add_layout(row)
        return t

    def test_perfect_group_beats_row_scan(self, table):
        model = CostModel()
        info = analyze_query(
            parse_query(
                "SELECT sum(a1+a2+a3+a4+a5) FROM r WHERE a6 < 0 AND a7 < 0"
            ),
            table.schema,
        )
        group = table.find_group({f"a{i}" for i in range(1, 11)})
        row = [l for l in table.layouts if l.width == 30][0]
        group_cost = model.plan_cost(
            info, AccessPlan(ExecutionStrategy.FUSED, (group,))
        )
        row_cost = model.plan_cost(
            info, AccessPlan(ExecutionStrategy.FUSED, (row,))
        )
        assert group_cost < row_cost

    def test_multi_conjunct_raises_late_cost(self, table):
        model = CostModel()
        single = analyze_query(
            parse_query("SELECT sum(a1) FROM r WHERE a2 < 0"), table.schema
        )
        multi = analyze_query(
            parse_query(
                "SELECT sum(a1) FROM r WHERE a2 < 0 AND a3 < 0 AND a4 < 0"
            ),
            table.schema,
        )
        cover = table.narrowest_cover(["a1", "a2", "a3", "a4"])
        late_single = model.plan_cost(
            single,
            AccessPlan(ExecutionStrategy.LATE, cover[:2]),
        )
        late_multi = model.plan_cost(
            multi, AccessPlan(ExecutionStrategy.LATE, cover)
        )
        assert late_multi > late_single

    def test_transformation_cost_positive_and_monotone(self):
        model = CostModel()
        small = model.transformation_cost(1000, 1000)
        large = model.transformation_cost(10_000_000, 10_000_000)
        assert 0 < small < large

    def test_build_cost_estimate(self):
        model = CostModel()
        cheap = model.build_cost_estimate(1000, 5, 5)
        expensive = model.build_cost_estimate(1000, 5, 100)
        assert cheap < expensive

    def test_plan_cost_every_enumerated_plan(self, table):
        """The model must be able to cost whatever the planner emits."""
        model = CostModel()
        for sql in [
            "SELECT a1 FROM r",
            "SELECT sum(a1), max(a12) FROM r WHERE a20 < 5",
            "SELECT a1 + a11 FROM r WHERE a2 < 0 AND a12 > 0",
        ]:
            info = analyze_query(parse_query(sql), table.schema)
            for plan in enumerate_plans(table, info):
                assert model.plan_cost(info, plan) > 0


class TestOpsCounter:
    def test_counts_arithmetic(self):
        expr = parse_query("SELECT a + b * c - d FROM r").select[0].expr
        assert count_arithmetic_ops(expr) == 3

    def test_counts_inside_aggregates(self):
        expr = parse_query("SELECT sum(a + b) FROM r").select[0].expr
        assert count_arithmetic_ops(expr) == 1
