"""The stitcher (layout transformation), data generation, persistence."""

import numpy as np
import pytest

from repro.errors import LayoutError, StorageError, WorkloadError
from repro.sql import DataType
from repro.storage import generate_table, wide_schema
from repro.storage.io import load_table, save_table
from repro.storage.layout import LayoutKind
from repro.storage.stitcher import (
    stitch_group,
    stitch_single_columns,
    stitched_block_iter,
)


class TestStitchGroup:
    def test_preserves_values_and_order(self, column_table):
        attrs = ("a2", "a5", "a7")
        group, stats = stitch_group(
            column_table.layouts, attrs, column_table.schema
        )
        for attr in attrs:
            assert (group.column(attr) == column_table.column(attr)).all()
        assert stats.bytes_written == group.nbytes
        assert stats.source_layouts == 3

    def test_from_row_layout(self, row_table):
        group, stats = stitch_group(
            row_table.layouts, ("a1", "a8"), row_table.schema
        )
        assert (group.column("a8") == row_table.column("a8")).all()
        # reading from the row layout fetches whole tuples
        assert stats.bytes_read == row_table.layouts[0].nbytes

    def test_prefers_narrow_sources(self, column_table):
        wide, _ = stitch_group(
            column_table.layouts,
            column_table.schema.names,
            column_table.schema,
            full_width=True,
        )
        column_table.add_layout(wide)
        _group, stats = stitch_group(
            column_table.layouts, ("a1", "a2"), column_table.schema
        )
        # singles (8 bytes/row each) beat the full-width layout
        assert stats.bytes_read < wide.nbytes

    def test_full_width_flag(self, column_table):
        group, _ = stitch_group(
            column_table.layouts,
            column_table.schema.names,
            column_table.schema,
            full_width=True,
        )
        assert group.kind is LayoutKind.ROW

    def test_empty_attrs_rejected(self, column_table):
        with pytest.raises(LayoutError):
            stitch_group(column_table.layouts, (), column_table.schema)

    def test_missing_source(self, column_table):
        with pytest.raises(LayoutError):
            stitch_group(
                column_table.layouts[:2], ("a5",), column_table.schema
            )


class TestStitchSingles:
    def test_decompose_row_layout(self, row_table):
        columns, stats = stitch_single_columns(
            row_table.layouts, ("a3", "a4")
        )
        assert [c.name for c in columns] == ["a3", "a4"]
        for column in columns:
            assert (
                column.data == row_table.column(column.name)
            ).all()
            assert column.data.flags["C_CONTIGUOUS"]
        assert stats.bytes_written == sum(c.nbytes for c in columns)


class TestBlockIter:
    def test_blocks_reassemble_group(self, column_table):
        attrs = ("a1", "a4")
        full, _ = stitch_group(
            column_table.layouts, attrs, column_table.schema
        )
        pieces = []
        for start, stop, block in stitched_block_iter(
            column_table.layouts, attrs, 300, full.data.dtype
        ):
            assert stop - start <= 300
            pieces.append(block)
        rebuilt = np.concatenate(pieces, axis=0)
        assert (rebuilt == full.data).all()

    def test_bad_block_size(self, column_table):
        with pytest.raises(LayoutError):
            list(
                stitched_block_iter(
                    column_table.layouts, ("a1",), 0, np.dtype(np.int64)
                )
            )


class TestGenerator:
    def test_deterministic(self):
        first = generate_table("r", 4, 100, rng=3)
        second = generate_table("r", 4, 100, rng=3)
        for name in first.schema.names:
            assert (first.column(name) == second.column(name)).all()

    def test_value_range(self):
        table = generate_table("r", 2, 5000, rng=0)
        values = table.column("a1")
        assert values.min() >= -(10**9)
        assert values.max() < 10**9

    def test_float_schema(self):
        schema = wide_schema(2, dtype=DataType.FLOAT64)
        table = generate_table("r", 2, 50, rng=0, schema=schema)
        assert table.column("a1").dtype == np.float64

    def test_rejects_bad_params(self):
        with pytest.raises(WorkloadError):
            generate_table("r", 0, 10)
        with pytest.raises(WorkloadError):
            generate_table("r", 3, 0)
        with pytest.raises(WorkloadError):
            generate_table("r", 3, 10, schema=wide_schema(4))


class TestIO:
    def test_roundtrip(self, tmp_path, column_table):
        save_table(column_table, tmp_path / "t")
        loaded = load_table(tmp_path / "t")
        assert loaded.schema == column_table.schema
        assert loaded.num_rows == column_table.num_rows
        for name in loaded.schema.names:
            assert (loaded.column(name) == column_table.column(name)).all()

    def test_roundtrip_row_layout_choice(self, tmp_path, column_table):
        save_table(column_table, tmp_path / "t")
        loaded = load_table(tmp_path / "t", initial_layout="row")
        assert loaded.layouts[0].kind is LayoutKind.ROW

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            load_table(tmp_path / "ghost")
